"""The identity-search service: resident index + coalesced panels.

:class:`IdentityService` is the in-process API (the TCP front end in
:mod:`repro.serve.server` is a thin JSON shim over it).  Per request it
answers the same question as :class:`repro.core.streaming.\
StreamingIdentitySearch` -- the top-k nearest database profiles by
Hamming distance, first-seen tie-breaking -- and it is bit-exact
against that offline path by construction: distances come from the same
:class:`~repro.core.framework.SNPComparisonFramework` (exact integer
popcounts, so sharing a panel with other requests cannot change them)
and the per-query fold reuses the streaming top-k heap, offered rows in
the same global database order.

What serving adds over the offline path:

* **residency** -- each index segment is packed for the device once
  and cached by segment id; ``.snpbin`` shards written in the device's
  word width skip even that (their mmap'd bytes *are* the operand);
* **coalescing** -- concurrent requests share one query panel through
  :class:`repro.serve.batcher.CoalescingBatcher`, amortizing the
  ``m_r`` row padding and the per-batch database feed;
* **isolation** -- a batch that fails after the active retry policy is
  re-run one request at a time (``serve.solo_fallbacks``), so a
  poisoned query takes down itself, not its batch peers;
* **accounting** -- exact ``serve.*`` counters plus per-tenant
  p50/p99/QPS through :class:`repro.serve.metrics.TenantLedger`.

Batch snapshot semantics: the index snapshot is taken when the batch
*executes*, after the coalescing window closed over every member.  An
:meth:`append` that returned before a request was submitted is
therefore always visible to that request (the append barrier).
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.core.config import Algorithm
from repro.core.framework import SNPComparisonFramework
from repro.core.packing import PackedOperand

# The streaming fold is the bit-exactness oracle; reusing its heap type
# (private by convention, stable within this codebase) keeps the
# tie-breaking rule defined in exactly one place.
from repro.core.streaming import Match, _check_binary_matrix, _QueryState
from repro.errors import (
    ConfigurationError,
    DatasetError,
    DeadlineExceededError,
    OverloadedError,
)
from repro.gpu.arch import GPUArchitecture
from repro.observability.counters import (
    SERVE_APPENDED_PROFILES,
    SERVE_BATCH_ROWS,
    SERVE_BATCHES,
    SERVE_COALESCED_BATCHES,
    SERVE_DEADLINE_EXCEEDED,
    SERVE_QUERIES,
    SERVE_REQUEST_FAILURES,
    SERVE_SHED,
    SERVE_SOLO_FALLBACKS,
)
from repro.observability.tracer import get_tracer
from repro.resilience.deadline import Deadline
from repro.resilience.retry import call_with_retry
from repro.resilience.runtime import get_resilience
from repro.serve.batcher import CoalescingBatcher
from repro.serve.index import ProfileIndex, Segment
from repro.serve.metrics import TenantLedger
from repro.serve.overload import CircuitBreaker
from repro.util.validation import check_workers

__all__ = ["QueryRequest", "IdentityService"]


class QueryRequest:
    """One validated query set waiting for (or inside) a batch."""

    __slots__ = ("queries", "k", "tenant", "admitted_at", "deadline")

    def __init__(
        self,
        queries: np.ndarray,
        k: int,
        tenant: str,
        admitted_at: float,
        deadline: Deadline | None = None,
    ) -> None:
        self.queries = queries
        self.k = k
        self.tenant = tenant
        self.admitted_at = admitted_at
        self.deadline = deadline

    @property
    def n_queries(self) -> int:
        return int(self.queries.shape[0])


_T = TypeVar("_T")


def _with_retry(fn: "Callable[[], _T]") -> _T:
    """Run ``fn`` under the active resilience retry policy."""
    policy = get_resilience().policy
    if policy.max_attempts <= 1:
        return fn()
    return call_with_retry(fn, policy)


class IdentityService:
    """Long-lived top-k identity search over a :class:`ProfileIndex`.

    Parameters mirror :class:`StreamingIdentitySearch` where they
    overlap; ``window_s``/``max_batch_rows`` shape the coalescing
    window (see :mod:`repro.serve.batcher`).
    """

    #: Upper bound on per-request ``k`` (matches the streaming bound).
    MAX_K = 4096

    def __init__(
        self,
        index: ProfileIndex,
        k: int = 5,
        device: "str | GPUArchitecture" = "Titan V",
        workers: int | None = None,
        strategy: str = "auto",
        backend: str = "auto",
        executor: str = "auto",
        window_s: float = 0.005,
        max_batch_rows: int = 512,
        pipeline_depth: int = 1,
        framework: SNPComparisonFramework | None = None,
        max_queue: int | None = None,
        max_inflight_rows: int | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if k <= 0 or k > self.MAX_K:
            raise DatasetError(
                f"IdentityService: default k={k} out of range [1, {self.MAX_K}]"
            )
        if workers is not None:
            # Fail at service construction, not at the first query's
            # engine dispatch (shared validator, ConfigurationError
            # subclasses ValueError).
            try:
                check_workers("IdentityService: workers", workers)
            except ValueError as exc:
                raise ConfigurationError(str(exc)) from None
        self.index = index
        self.default_k = k
        self.framework = framework or SNPComparisonFramework(
            device,
            Algorithm.FASTID_IDENTITY,
            workers=workers,
            strategy=strategy,
            backend=backend,
            executor=executor,
        )
        if self.framework.algorithm is not Algorithm.FASTID_IDENTITY:
            raise ConfigurationError(
                f"IdentityService: framework runs "
                f"{self.framework.algorithm.value!r}; identity search "
                f"requires 'fastid-identity'"
            )
        self.ledger = TenantLedger()
        self._packed: dict[int, PackedOperand] = {}
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=5, cooldown_s=1.0
        )
        self._batcher = CoalescingBatcher(
            self._execute_batch,
            window_s=window_s,
            max_rows=max_batch_rows,
            pipeline_depth=pipeline_depth,
            max_queue=max_queue,
            max_inflight_rows=max_inflight_rows,
        )
        self._closed = False
        self._draining = False

    # -- request admission -----------------------------------------------------

    @staticmethod
    def _as_deadline(
        deadline: "Deadline | float | None",
    ) -> Deadline | None:
        """Normalize a deadline argument (seconds budget or instance)."""
        if deadline is None or isinstance(deadline, Deadline):
            return deadline
        return Deadline.after(float(deadline))

    def _check_admission(self) -> None:
        """Drain and breaker gates, shared by submit/search_many."""
        if self._closed:
            raise ConfigurationError("IdentityService: service is closed")
        if self._draining:
            get_tracer().counters.add(SERVE_SHED)
            raise OverloadedError(
                "IdentityService: service is draining (shutting down)",
                retry_after_ms=0,
                reason="shutting_down",
            )
        if not self.breaker.allow():
            hint = self.breaker.retry_after_ms()
            get_tracer().counters.add(SERVE_SHED)
            raise OverloadedError(
                f"IdentityService: circuit breaker is "
                f"{self.breaker.state}; retry after {hint} ms",
                retry_after_ms=hint,
                reason="breaker_open",
            )

    def _validate(
        self,
        queries: np.ndarray,
        k: int | None,
        tenant: str,
        deadline: Deadline | None = None,
    ) -> QueryRequest:
        q = _check_binary_matrix("IdentityService: queries", queries)
        if q.shape[0] == 0:
            raise DatasetError(
                "IdentityService: queries must be a non-empty 2-D matrix"
            )
        if q.shape[1] != self.index.n_bits:
            raise DatasetError(
                f"IdentityService: queries cover {q.shape[1]} sites, "
                f"index is {self.index.n_bits} sites wide"
            )
        kk = self.default_k if k is None else k
        if kk <= 0 or kk > self.MAX_K:
            raise DatasetError(
                f"IdentityService: k={kk} out of range [1, {self.MAX_K}]"
            )
        if not tenant:
            raise DatasetError("IdentityService: tenant must be non-empty")
        return QueryRequest(
            queries=np.ascontiguousarray(q, dtype=np.uint8),
            k=kk,
            tenant=tenant,
            admitted_at=time.perf_counter(),
            deadline=deadline,
        )

    def submit(
        self,
        queries: np.ndarray,
        k: int | None = None,
        tenant: str = "default",
        deadline: "Deadline | float | None" = None,
    ) -> "Future[list[list[Match]]]":
        """Admit one query set; the future resolves to per-query top-k.

        Validation (shape, dtype, binary-ness, ``k`` bounds) happens
        here, synchronously, so malformed requests fail loudly before
        ever touching a batch.  ``deadline`` is either a
        :class:`~repro.resilience.deadline.Deadline` or a relative
        budget in seconds; admission control may shed the request with
        :class:`~repro.errors.OverloadedError` (draining service, open
        breaker, or a full batcher queue).
        """
        self._check_admission()
        request = self._validate(
            queries, k, tenant, deadline=self._as_deadline(deadline)
        )
        get_tracer().counters.add(SERVE_QUERIES)
        return self._batcher.submit(
            request, rows=request.n_queries, deadline=request.deadline
        )

    def search(
        self,
        queries: np.ndarray,
        k: int | None = None,
        tenant: str = "default",
        deadline: "Deadline | float | None" = None,
    ) -> list[list[Match]]:
        """Blocking :meth:`submit` (waits through the coalescing window)."""
        return self.submit(
            queries, k=k, tenant=tenant, deadline=deadline
        ).result()

    def search_many(
        self,
        query_sets: Sequence[np.ndarray],
        k: int | None = None,
        tenant: str = "default",
    ) -> list[list[list[Match]]]:
        """Serve several query sets as **one forced batch**.

        Deterministic coalescing -- no timing window involved -- for
        tests, the CI smoke gate, and callers that already hold a
        burst.  Semantically identical to submitting them concurrently
        and having the window coalesce them.
        """
        self._check_admission()
        requests = [self._validate(q, k, tenant) for q in query_sets]
        if not requests:
            return []
        obs = get_tracer()
        for _ in requests:
            obs.counters.add(SERVE_QUERIES)
        outcomes = self._execute_batch(requests)
        results: list[list[list[Match]]] = []
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome
            results.append(outcome)
        return results

    def append(self, profiles: np.ndarray) -> tuple[int, int]:
        """Append profiles to the index (see the append barrier note)."""
        start, stop = self.index.append(profiles)
        if stop > start:
            get_tracer().counters.add(SERVE_APPENDED_PROFILES, stop - start)
        return start, stop

    # -- execution -------------------------------------------------------------

    def _resident(self, segment: Segment) -> PackedOperand:
        """This segment's device operand, packed at most once per sid."""
        cached = self._packed.get(segment.sid)
        if cached is not None:
            return cached
        words = segment.packed_words(self.framework.arch.word_bits)
        if words is not None:
            # Zero-repack residency: the shard's bytes already are
            # pack_bits layout in the device word width; only the row
            # padding to m_r (zero rows, cropped after the GEMM) is new.
            m_r = self.framework.config.m_r
            padded = -(-segment.n_rows // m_r) * m_r
            if padded != words.shape[0]:
                full = np.zeros((padded, words.shape[1]), dtype=words.dtype)
                full[: words.shape[0]] = words
                words = full
            operand = PackedOperand(
                words=words, n_rows=segment.n_rows, n_bits=segment.n_bits
            )
        else:
            operand = self.framework.pack(segment.bits())
        self._packed[segment.sid] = operand
        return operand

    def _run_panel(
        self, requests: Sequence[QueryRequest], snapshot: tuple[Segment, ...]
    ) -> list[object]:
        """One coalesced panel pass: all requests vs every segment.

        State is local, so a retry of the whole call folds each row
        exactly once.  Query rows are stacked in admission order and
        demultiplexed by row range; database order is the snapshot's
        global order, which fixes tie-breaking identically to the
        streaming path.

        Deadlines are re-checked between segment folds: a request whose
        budget expires mid-panel gets a
        :class:`~repro.errors.DeadlineExceededError` *outcome* (not a
        raise, so batch peers are unaffected), and once every request
        has expired the remaining segments are skipped entirely.
        """
        stacked = (
            np.vstack([r.queries for r in requests])
            if len(requests) > 1
            else requests[0].queries
        )
        q_op = self.framework.pack(stacked)
        states = [
            [_QueryState(k=r.k) for _ in range(r.n_queries)] for r in requests
        ]
        expired: dict[int, DeadlineExceededError] = {}
        for segment in snapshot:
            for ri, request in enumerate(requests):
                if ri in expired:
                    continue
                dl = request.deadline
                if dl is not None and dl.expired:
                    expired[ri] = DeadlineExceededError(
                        "IdentityService: deadline expired mid-fold "
                        f"(overran by {dl.overrun() * 1e3:.1f} ms, "
                        f"{len(snapshot)} segments)",
                        overrun_s=dl.overrun(),
                    )
            if len(expired) == len(requests):
                break
            table, _report = self.framework.run_packed(
                q_op, self._resident(segment)
            )
            row = 0
            for ri, request in enumerate(requests):
                if ri in expired:
                    row += request.n_queries
                    continue
                for qi in range(request.n_queries):
                    distances = table[row]
                    state = states[ri][qi]
                    if len(state.heap) == state.k:
                        cutoff = -state.heap[0][0]
                        candidates = np.nonzero(distances <= cutoff)[0]
                    else:
                        candidates = np.arange(distances.size)
                    for local in candidates:
                        state.offer(
                            int(distances[local]), segment.base + int(local)
                        )
                    row += 1
        return [
            expired[ri]
            if ri in expired
            else [state.matches() for state in per_request]
            for ri, per_request in enumerate(states)
        ]

    def _execute_batch(
        self, requests: Sequence[QueryRequest]
    ) -> list[object]:
        """Batcher callback: run one batch, degrade to solo on failure.

        Returns one outcome per request (results or exception
        instances); see the batcher's isolation contract.
        """
        obs = get_tracer()
        # Service-tier latency fault hook (chaos: ``latency`` plans): a
        # scheduled firing sleeps here, before packing, modeling a slow
        # backend that deadline checks must then absorb.
        get_resilience().injector.service_delay()
        # Reject already-expired requests before packing/compute.
        live: list[QueryRequest] = []
        by_request: dict[int, object] = {}
        for i, request in enumerate(requests):
            dl = request.deadline
            if dl is not None and dl.expired:
                obs.counters.add(SERVE_DEADLINE_EXCEEDED)
                by_request[i] = DeadlineExceededError(
                    "IdentityService: deadline expired before batch "
                    f"execution (overran by {dl.overrun() * 1e3:.1f} ms)",
                    overrun_s=dl.overrun(),
                )
            else:
                live.append(request)
        snapshot = self.index.snapshot()
        total_rows = sum(r.n_queries for r in live)
        live_outcomes: list[object] = []
        if live:
            obs.counters.add(SERVE_BATCHES)
            if len(live) >= 2:
                obs.counters.add(SERVE_COALESCED_BATCHES)
            obs.counters.add(SERVE_BATCH_ROWS, total_rows)
            with obs.span(
                "serve.batch", requests=len(live), rows=total_rows,
                segments=len(snapshot),
            ):
                try:
                    live_outcomes = list(
                        _with_retry(lambda: self._run_panel(live, snapshot))
                    )
                except Exception:
                    # Isolation rung: the coalesced panel failed after
                    # the retry policy; re-run each request alone so
                    # only the poisoned one (if any) fails its caller.
                    live_outcomes = []
                    for request in live:
                        obs.counters.add(SERVE_SOLO_FALLBACKS)
                        try:
                            solo = _with_retry(
                                lambda req=request: self._run_panel(
                                    [req], snapshot
                                )[0]
                            )
                            live_outcomes.append(solo)
                        except Exception as exc:
                            obs.counters.add(SERVE_REQUEST_FAILURES)
                            live_outcomes.append(exc)
            for outcome in live_outcomes:
                if isinstance(outcome, DeadlineExceededError):
                    obs.counters.add(SERVE_DEADLINE_EXCEEDED)
        live_iter = iter(live_outcomes)
        outcomes: list[object] = [
            by_request[i] if i in by_request else next(live_iter)
            for i in range(len(requests))
        ]
        # Breaker bookkeeping: deadline rejections are the client's
        # budget, not backend health -- only real failures count.
        backend_failed = any(
            isinstance(o, BaseException)
            and not isinstance(o, DeadlineExceededError)
            for o in outcomes
        )
        if backend_failed:
            self.breaker.record_failure()
        elif live:
            self.breaker.record_success()
        finished = time.perf_counter()
        for request, outcome in zip(requests, outcomes):
            self.ledger.record(
                request.tenant,
                rows=request.n_queries,
                seconds=finished - request.admitted_at,
                failed=isinstance(outcome, BaseException),
            )
        return outcomes

    # -- accounting ------------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Service-level accounting: index shape + per-tenant SLOs.

        The exact work counters (``serve.*``, ``gemm.*``) live on the
        active tracer's registry; enable observability to collect them
        (see docs/OBSERVABILITY.md).
        """
        counters = get_tracer().counters.snapshot()
        return {
            "index": {
                "n_rows": self.index.n_rows,
                "n_bits": self.index.n_bits,
                "segments": self.index.n_segments,
            },
            "tenants": self.ledger.summary(),
            "counters": {
                name: value
                for name, value in sorted(counters.items())
                if name.startswith("serve.")
            },
        }

    def state(self) -> str:
        """One-word health state: ``ready``, ``draining`` or ``tripped``."""
        if self._closed or self._draining:
            return "draining"
        if self.breaker.state != "closed":
            return "tripped"
        return "ready"

    def health(self) -> dict[str, object]:
        """Health snapshot for the ``health`` protocol verb."""
        return {
            "state": self.state(),
            "draining": self._draining or self._closed,
            "breaker": self.breaker.state,
            "breaker_trips": self.breaker.trips,
            "queued_requests": self._batcher.queued_requests,
            "inflight_rows": self._batcher.inflight_rows,
            "index_rows": self.index.n_rows,
        }

    def drain(self, timeout: float | None = 10.0) -> bool:
        """Graceful drain: stop admitting, finish what is in flight.

        New submissions are shed with ``reason="shutting_down"`` from
        the moment this is called.  Returns ``True`` once nothing is
        queued or executing, ``False`` on timeout.
        """
        self._draining = True
        return self._batcher.wait_idle(timeout=timeout)

    def close(self) -> None:
        """Drain in-flight batches and stop the batcher."""
        if self._closed:
            return
        self._draining = True
        self._closed = True
        self._batcher.close()

    def __enter__(self) -> "IdentityService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
