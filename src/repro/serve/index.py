"""Resident profile index: mmap'd ``.snpbin`` shards + an append tail.

The serving problem (ROADMAP item 1, PAPER.md's NDIS-scale FastID
scenario) keeps the packed database *resident* across requests instead
of re-reading and re-packing it per query set.  :class:`ProfileIndex`
holds the database as a sequence of immutable :class:`Segment` runs:

* **sealed segments** -- ``.snpbin`` shard files memory-mapped through
  :class:`repro.io_stream.format.PackedDatasetReader` (the OS pages
  them in on first touch and keeps hot shards cached);
* **tail segments** -- profiles appended online, frozen in memory one
  append at a time, sealed to a new shard file once ``shard_rows``
  accumulate (directory-backed indexes only).

Appends never repack existing shards: a new profile lands in the tail,
the tail eventually becomes one more shard file, and every previously
issued global row index stays valid -- rows are numbered in arrival
order, exactly like :meth:`StreamingIdentitySearch.add_batch` numbers
streamed batches, which is what keeps served top-k results bit-exact
against the offline path.

**Append barrier**: :meth:`ProfileIndex.append` returns only after the
new rows are visible to every later :meth:`snapshot`.  A query admitted
after ``append`` returned is therefore guaranteed to be scored against
the appended profiles; in-flight queries batched *before* the append
may or may not see them (their snapshot was already taken).

Reopening a directory-backed index scans ``*.snpbin`` in sorted
filename order; shards the index seals itself are named with a
monotonic sequence number so the scan order matches write order.  Let
the index own its directory (see :meth:`ProfileIndex.build`) rather
than mixing foreign files into it.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.errors import DatasetError
from repro.io_stream.format import PackedDatasetReader, write_snpbin

__all__ = ["Segment", "ProfileIndex"]


def _check_profiles(name: str, data: np.ndarray) -> np.ndarray:
    """Validate a binary profile matrix (mirrors the streaming checks)."""
    arr = np.asarray(data)
    if arr.ndim != 2:
        raise DatasetError(
            f"{name} must be a 2-D binary matrix, got {arr.ndim}-D shape {arr.shape}"
        )
    if arr.dtype != np.bool_ and not np.issubdtype(arr.dtype, np.integer):
        raise DatasetError(
            f"{name} has dtype {arr.dtype}; binary matrices must use an "
            f"integer or bool dtype"
        )
    if arr.size and (arr.min() < 0 or arr.max() > 1):
        raise DatasetError(
            f"{name} contains non-binary values "
            f"(min={int(arr.min())}, max={int(arr.max())}); entries must be 0 or 1"
        )
    return arr


class Segment:
    """One immutable run of profile rows with a stable global base index.

    ``sid`` uniquely identifies the segment's *contents* within its
    index for the index's lifetime (sealing replaces tail segments with
    one shard segment under a fresh sid), so callers may cache derived
    artifacts -- packed operands, most importantly -- keyed by sid.
    """

    __slots__ = ("sid", "base", "n_rows", "n_bits", "_bits", "_words")

    def __init__(
        self,
        sid: int,
        base: int,
        n_rows: int,
        n_bits: int,
        bits: Callable[[], np.ndarray],
        words: Callable[[int], "np.ndarray | None"] | None = None,
    ) -> None:
        self.sid = sid
        self.base = base
        self.n_rows = n_rows
        self.n_bits = n_bits
        self._bits = bits
        self._words = words

    def bits(self) -> np.ndarray:
        """The segment's rows as an unpacked 0/1 ``uint8`` matrix."""
        return self._bits()

    def packed_words(self, word_bits: int) -> np.ndarray | None:
        """Packed words in ``pack_bits`` layout, or ``None``.

        Non-``None`` only when the backing store already holds words of
        the requested width (a ``.snpbin`` shard written with the
        serving device's word size) -- the zero-repack residency path.
        """
        if self._words is None:
            return None
        return self._words(word_bits)

    def __repr__(self) -> str:
        return (
            f"Segment(sid={self.sid}, base={self.base}, "
            f"n_rows={self.n_rows}, n_bits={self.n_bits})"
        )


def _shard_segment(sid: int, base: int, reader: PackedDatasetReader) -> Segment:
    def words(word_bits: int) -> np.ndarray | None:
        if reader.word_bits != word_bits:
            return None
        return reader.read_words(0, reader.n_rows)

    return Segment(
        sid=sid,
        base=base,
        n_rows=reader.n_rows,
        n_bits=reader.n_bits,
        bits=lambda: reader.read_bits(0, reader.n_rows),
        words=words,
    )


def _tail_segment(sid: int, base: int, block: np.ndarray) -> Segment:
    return Segment(
        sid=sid,
        base=base,
        n_rows=int(block.shape[0]),
        n_bits=int(block.shape[1]),
        bits=lambda: block,
    )


class ProfileIndex:
    """Thread-safe resident database: sealed shards plus an append tail.

    Parameters
    ----------
    directory:
        Shard directory.  ``None`` keeps everything in memory (tests,
        benches, ephemeral services); otherwise existing ``*.snpbin``
        files are opened (sorted filename order) and future seals land
        here.
    n_bits:
        Site count; required when the index starts empty, validated
        against the shards otherwise.
    shard_rows:
        Tail size that triggers an automatic :meth:`seal` (directory
        indexes only).
    word_bits:
        Word width for shards this index writes.  Match the serving
        device's word size (32 for the modeled GPUs) and the packed
        file bytes double as the resident operand without repacking.
    """

    def __init__(
        self,
        directory: "str | Path | None" = None,
        n_bits: int | None = None,
        shard_rows: int = 4096,
        word_bits: int = 64,
    ) -> None:
        if shard_rows <= 0:
            raise DatasetError(
                f"ProfileIndex: shard_rows must be positive, got {shard_rows}"
            )
        self.directory = Path(directory) if directory is not None else None
        self.shard_rows = shard_rows
        self.word_bits = word_bits
        self._lock = threading.Lock()
        self._readers: list[PackedDatasetReader] = []
        self._sealed: list[Segment] = []
        self._tail: list[Segment] = []
        self._tail_rows = 0
        self._next_sid = 0
        self._next_shard_seq = 0
        self._n_bits = n_bits
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            base = 0
            for path in sorted(self.directory.glob("*.snpbin")):
                reader = PackedDatasetReader(path)
                if self._n_bits is None:
                    self._n_bits = reader.n_bits
                elif reader.n_bits != self._n_bits:
                    raise DatasetError(
                        f"ProfileIndex: shard {path} covers {reader.n_bits} "
                        f"sites, index is {self._n_bits} sites wide"
                    )
                if reader.n_rows == 0:
                    reader.close()
                    continue
                self._readers.append(reader)
                self._sealed.append(
                    _shard_segment(self._next_sid, base, reader)
                )
                self._next_sid += 1
                base += reader.n_rows
            self._next_shard_seq = len(self._sealed)
        if self._n_bits is None:
            raise DatasetError(
                "ProfileIndex: n_bits is required for an empty index "
                "(no shards to infer it from)"
            )

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        directory: "str | Path",
        profiles: np.ndarray,
        shard_rows: int = 4096,
        word_bits: int = 64,
    ) -> "ProfileIndex":
        """Shard a profile matrix into ``directory`` and open the index."""
        arr = _check_profiles("ProfileIndex.build: profiles", profiles)
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if shard_rows <= 0:
            raise DatasetError(
                f"ProfileIndex.build: shard_rows must be positive, got {shard_rows}"
            )
        for seq, start in enumerate(range(0, arr.shape[0], shard_rows)):
            write_snpbin(
                directory / f"shard-{seq:06d}.snpbin",
                arr[start : start + shard_rows],
                word_bits=word_bits,
            )
        return cls(
            directory,
            n_bits=int(arr.shape[1]),
            shard_rows=shard_rows,
            word_bits=word_bits,
        )

    # -- introspection ---------------------------------------------------------

    @property
    def n_bits(self) -> int:
        assert self._n_bits is not None  # guaranteed by __init__
        return self._n_bits

    @property
    def n_rows(self) -> int:
        with self._lock:
            return self._row_count()

    @property
    def n_segments(self) -> int:
        with self._lock:
            return len(self._sealed) + len(self._tail)

    def _row_count(self) -> int:
        sealed = sum(s.n_rows for s in self._sealed)
        return sealed + self._tail_rows

    # -- mutation --------------------------------------------------------------

    def append(self, profiles: np.ndarray) -> tuple[int, int]:
        """Append profile rows; returns their global ``[start, stop)``.

        This is the **append barrier**: once ``append`` returns, every
        later :meth:`snapshot` includes the new rows, so any query
        admitted afterwards is scored against them.
        """
        arr = _check_profiles("ProfileIndex.append: profiles", profiles)
        if arr.shape[1] != self.n_bits:
            raise DatasetError(
                f"ProfileIndex.append: profiles cover {arr.shape[1]} sites, "
                f"index is {self.n_bits} sites wide"
            )
        if arr.shape[0] == 0:
            with self._lock:
                rows = self._row_count()
            return rows, rows
        block = np.ascontiguousarray(arr, dtype=np.uint8)
        block.setflags(write=False)
        with self._lock:
            start = self._row_count()
            self._tail.append(_tail_segment(self._next_sid, start, block))
            self._next_sid += 1
            self._tail_rows += int(block.shape[0])
            if self.directory is not None and self._tail_rows >= self.shard_rows:
                self._seal_locked()
            return start, start + int(block.shape[0])

    def seal(self) -> "Path | None":
        """Flush the tail to a new shard file (directory indexes only).

        Returns the new shard's path, or ``None`` when there is nothing
        to seal or the index is memory-only.  Global row indices are
        unaffected; only segment identities (sids) change, so cached
        per-segment artifacts are rebuilt once.
        """
        with self._lock:
            return self._seal_locked()

    def _seal_locked(self) -> "Path | None":
        if self.directory is None or not self._tail:
            return None
        base = self._tail[0].base
        block = np.vstack([seg.bits() for seg in self._tail])
        path = self.directory / f"shard-{self._next_shard_seq:06d}.snpbin"
        self._next_shard_seq += 1
        write_snpbin(path, block, word_bits=self.word_bits)
        reader = PackedDatasetReader(path)
        self._readers.append(reader)
        self._sealed.append(_shard_segment(self._next_sid, base, reader))
        self._next_sid += 1
        self._tail = []
        self._tail_rows = 0
        return path

    # -- reading ---------------------------------------------------------------

    def snapshot(self) -> tuple[Segment, ...]:
        """Immutable view of every segment, in global row order.

        Segments are immutable, so the snapshot stays valid (and
        consistent) however many appends or seals happen afterwards.
        """
        with self._lock:
            return tuple(self._sealed) + tuple(self._tail)

    def iter_bits(self, chunk_rows: int = 8192) -> Iterator[np.ndarray]:
        """Yield the whole database as unpacked chunks (offline oracle)."""
        if chunk_rows <= 0:
            raise DatasetError(
                f"ProfileIndex.iter_bits: chunk_rows must be positive, "
                f"got {chunk_rows}"
            )
        for seg in self.snapshot():
            bits = seg.bits()
            for start in range(0, seg.n_rows, chunk_rows):
                yield bits[start : start + chunk_rows]

    def close(self) -> None:
        """Release shard mappings (the index is unusable afterwards)."""
        with self._lock:
            for reader in self._readers:
                reader.close()
            self._readers = []
            self._sealed = []
            self._tail = []
            self._tail_rows = 0

    def __enter__(self) -> "ProfileIndex":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ProfileIndex(directory={str(self.directory)!r}, "
            f"n_rows={self.n_rows}, n_bits={self.n_bits}, "
            f"segments={self.n_segments})"
        )
