"""Overload protection primitives: the serving circuit breaker.

Admission bounds live on :class:`repro.serve.batcher.CoalescingBatcher`
(queue and in-flight row budgets); this module holds the failure-driven
half of load shedding.  A :class:`CircuitBreaker` watches consecutive
backend failures: after ``failure_threshold`` in a row it *trips* open
and the service sheds everything with a ``retry_after_ms`` hint instead
of queueing requests a broken backend will fail anyway.  After
``cooldown_s`` it half-opens: exactly one probe request is admitted; a
probe success closes the breaker, a probe failure re-trips it (and
re-counts ``serve.breaker_trips``).

Deadline rejections do **not** count as backend failures -- an expired
budget is the client's signal, not backend health.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import ConfigurationError
from repro.observability.counters import SERVE_BREAKER_TRIPS
from repro.observability.tracer import get_tracer

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed / open / half-open).

    Parameters
    ----------
    failure_threshold:
        Consecutive batch failures that trip the breaker open.
    cooldown_s:
        Seconds the breaker stays open before half-opening for a probe.
    clock:
        Injectable monotonic clock for deterministic tests.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold <= 0:
            raise ConfigurationError(
                f"CircuitBreaker: failure_threshold must be positive, "
                f"got {failure_threshold}"
            )
        if cooldown_s <= 0:
            raise ConfigurationError(
                f"CircuitBreaker: cooldown_s must be positive, got {cooldown_s}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self.trips = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` (cooldown-aware)."""
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._state = "half-open"
            self._probe_inflight = False

    def _trip_locked(self) -> None:
        self._state = "open"
        self._opened_at = self._clock()
        self._probe_inflight = False
        self.trips += 1
        get_tracer().counters.add(SERVE_BREAKER_TRIPS)

    def allow(self) -> bool:
        """Whether to admit one request now.

        Open: rejects until the cooldown elapses.  Half-open: admits
        exactly one probe at a time; further requests are rejected
        until the probe's outcome is recorded.
        """
        with self._lock:
            if self._state == "closed":
                return True
            self._maybe_half_open_locked()
            if self._state == "open":
                return False
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def retry_after_ms(self) -> int:
        """Milliseconds until the next probe slot (shed-reply hint)."""
        with self._lock:
            if self._state != "open":
                return max(1, int(self.cooldown_s * 250))
            remaining = self.cooldown_s - (self._clock() - self._opened_at)
            return max(1, int(remaining * 1e3))

    def record_success(self) -> None:
        """A backend batch succeeded: close the breaker, reset the run."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_inflight = False
            self._state = "closed"

    def record_failure(self) -> None:
        """A backend batch failed: extend the run, maybe trip.

        A half-open probe failure re-trips immediately (the backend is
        still broken); a closed-state failure trips once the
        consecutive run reaches the threshold.
        """
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == "half-open":
                self._consecutive_failures = self.failure_threshold
                self._trip_locked()
                return
            self._consecutive_failures += 1
            if (
                self._state == "closed"
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip_locked()

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, trips={self.trips}, "
            f"threshold={self.failure_threshold}, "
            f"cooldown_s={self.cooldown_s})"
        )
