"""JSON-lines TCP front end + client for :class:`IdentityService`.

One JSON object per line, both directions.  Requests carry an ``op``::

    {"op": "search", "queries": [[0,1,...], ...], "k": 5,
     "tenant": "lab-a", "deadline_ms": 250, "id": 17}
    {"op": "append", "profiles": [[0,1,...], ...]}
    {"op": "stats"}
    {"op": "health"}
    {"op": "ping"}

Responses echo the request's ``id`` (when given) and carry ``ok``::

    {"ok": true, "id": 17, "matches": [[[distance, index], ...], ...]}
    {"ok": false, "error": "...", "kind": "DatasetError"}

``deadline_ms`` starts the request's :class:`~repro.resilience.deadline.
Deadline` at decode time, so the budget covers queueing *and* compute;
an expired request answers ``kind: "DeadlineExceededError"`` with
``overrun_ms``.  Shed requests (bounded queue, open breaker, draining
server) answer ``kind: "OverloadedError"`` with ``retry_after_ms`` and
a ``reason`` of ``queue_full``, ``breaker_open`` or ``shutting_down``
-- clients back off instead of piling onto a saturated backend.
``health`` reports :meth:`IdentityService.health` for probes.

**Drain**: :meth:`IdentityServer.request_stop` first stops admitting
new searches (they shed with ``shutting_down``), then waits up to
``drain_grace_s`` for in-flight searches to answer before closing
connections -- accepted work is completed, not dropped.

The server is a thin asyncio shim: each ``search`` awaits the future
returned by :meth:`IdentityService.submit` via ``asyncio.wrap_future``,
so queries from *different connections* land in the same coalescing
window -- the event loop never blocks on the GEMM, which runs on the
batcher's executor thread.  Errors are per-request: a malformed line or
a failed query answers ``ok: false`` on that line and the connection
stays usable.

:class:`BackgroundServer` runs the server on a daemon thread for tests
and the CI smoke job; :class:`ServiceClient` is the matching blocking
client.  ``repro.cli serve`` drives :func:`run_server` in the
foreground.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from queue import Empty, Queue
from typing import Any

import numpy as np

from repro.core.streaming import Match
from repro.errors import (
    DatasetError,
    DeadlineExceededError,
    OverloadedError,
    ReproError,
)
from repro.observability.counters import SERVE_SHED
from repro.observability.tracer import get_tracer
from repro.resilience.deadline import Deadline
from repro.serve.service import IdentityService

__all__ = [
    "IdentityServer",
    "BackgroundServer",
    "ServiceClient",
    "run_server",
]

#: Refuse absurd single lines instead of buffering them (64 MiB).
MAX_LINE_BYTES = 64 * 1024 * 1024


def _matrix_from_json(name: str, payload: Any) -> np.ndarray:
    """Decode a JSON list-of-lists into a binary matrix, strictly."""
    try:
        arr = np.asarray(payload, dtype=np.int64)
    except (TypeError, ValueError) as exc:
        raise DatasetError(f"{name}: not a rectangular numeric matrix") from exc
    if arr.ndim != 2:
        raise DatasetError(
            f"{name}: expected a 2-D matrix, got {arr.ndim}-D shape {arr.shape}"
        )
    return arr


def _deadline_from_json(payload: Any) -> "Deadline | None":
    """Decode an optional ``deadline_ms`` field into a started deadline.

    The clock starts *here*, at decode time, so the budget covers the
    request's whole server-side life: coalescing-queue wait included.
    """
    if payload is None:
        return None
    try:
        budget_ms = float(payload)
    except (TypeError, ValueError) as exc:
        raise DatasetError(
            f"search.deadline_ms: expected a number of milliseconds, "
            f"got {payload!r}"
        ) from exc
    if budget_ms <= 0:
        raise DatasetError(
            f"search.deadline_ms: must be positive, got {budget_ms}"
        )
    return Deadline.after(budget_ms / 1e3)


def _matches_to_json(matches: list[list[Match]]) -> list[list[list[int]]]:
    return [
        [[m.distance, m.database_index] for m in per_query]
        for per_query in matches
    ]


class IdentityServer:
    """Asyncio TCP server around one :class:`IdentityService`."""

    def __init__(
        self,
        service: IdentityService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_requests: int | None = None,
        drain_grace_s: float = 5.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        #: Stop after this many ``search`` requests (None = run forever);
        #: lets tests and the CLI self-check run the real wire path
        #: without needing an external kill.
        self.max_requests = max_requests
        #: Seconds to wait for in-flight searches when stopping.
        self.drain_grace_s = drain_grace_s
        self._served = 0
        self._inflight = 0
        self._draining = False
        self._server: "asyncio.AbstractServer | None" = None
        self._stop = asyncio.Event()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (port resolved after start)."""
        return self.host, self.port

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_LINE_BYTES,
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        return self.host, self.port

    async def serve_until_stopped(self) -> None:
        if self._server is None:
            await self.start()
        await self._stop.wait()
        await self._shutdown()

    async def _shutdown(self) -> None:
        # Graceful drain: new searches were already shedding with
        # ``shutting_down`` (request_stop set the flag); give in-flight
        # searches a bounded grace window to answer before tearing the
        # connections down.
        deadline = Deadline.after(max(self.drain_grace_s, 0.0))
        while self._inflight > 0 and not deadline.expired:
            await asyncio.sleep(0.01)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Both entry points (run_server, BackgroundServer) give the
        # server its own event loop, so every remaining task is one of
        # our connection handlers -- cancel them instead of leaking
        # "Task was destroyed but it is pending" at loop close.
        current = asyncio.current_task()
        handlers = [t for t in asyncio.all_tasks() if t is not current]
        for task in handlers:
            task.cancel()
        if handlers:
            await asyncio.gather(*handlers, return_exceptions=True)

    def request_stop(self) -> None:
        self._draining = True
        self._stop.set()

    # -- per-connection loop ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            # Server shutdown cancelled us mid-read; completing normally
            # (instead of staying "cancelled") keeps the stream
            # protocol's done-callback from logging a traceback per
            # still-open connection.
            pass
        except (ConnectionError, OSError):
            # The client vanished mid-exchange (reset, abrupt close).
            # One connection's demise must never take the server down;
            # any answer it was owed is simply undeliverable.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                await self._send(
                    writer,
                    {"ok": False, "error": "line too long", "kind": "protocol"},
                )
                return
            if not line:
                return
            response = await self._dispatch(line)
            await self._send(writer, response)
            if (
                self.max_requests is not None
                and self._served >= self.max_requests
            ):
                self.request_stop()
                return

    async def _send(
        self, writer: asyncio.StreamWriter, payload: dict[str, Any]
    ) -> None:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()

    async def _dispatch(self, line: bytes) -> dict[str, Any]:
        request_id: Any = None
        try:
            message = json.loads(line)
            if not isinstance(message, dict):
                raise DatasetError("request must be a JSON object")
            request_id = message.get("id")
            op = message.get("op")
            if op == "ping":
                reply: dict[str, Any] = {"ok": True, "pong": True}
            elif op == "stats":
                reply = {"ok": True, "stats": self.service.stats()}
            elif op == "health":
                health = self.service.health()
                if self._draining:
                    health["state"] = "draining"
                    health["draining"] = True
                reply = {"ok": True, "health": health}
            elif op == "append":
                profiles = _matrix_from_json(
                    "append.profiles", message.get("profiles")
                )
                start, stop = self.service.append(profiles)
                reply = {"ok": True, "start": start, "stop": stop}
            elif op == "search":
                if self._draining:
                    get_tracer().counters.add(SERVE_SHED)
                    raise OverloadedError(
                        "server is draining; not admitting new searches",
                        retry_after_ms=0,
                        reason="shutting_down",
                    )
                queries = _matrix_from_json(
                    "search.queries", message.get("queries")
                )
                deadline = _deadline_from_json(message.get("deadline_ms"))
                future = self.service.submit(
                    queries,
                    k=message.get("k"),
                    tenant=str(message.get("tenant", "default")),
                    deadline=deadline,
                )
                self._inflight += 1
                try:
                    matches = await asyncio.wrap_future(future)
                finally:
                    self._inflight -= 1
                self._served += 1
                reply = {"ok": True, "matches": _matches_to_json(matches)}
            else:
                raise DatasetError(f"unknown op {op!r}")
        except json.JSONDecodeError as exc:
            reply = {"ok": False, "error": f"bad JSON: {exc}", "kind": "protocol"}
        except OverloadedError as exc:
            reply = {
                "ok": False,
                "error": str(exc),
                "kind": "OverloadedError",
                "retry_after_ms": exc.retry_after_ms,
                "reason": exc.reason,
            }
        except DeadlineExceededError as exc:
            reply = {
                "ok": False,
                "error": str(exc),
                "kind": "DeadlineExceededError",
                "overrun_ms": int(exc.overrun_s * 1e3),
            }
        except ReproError as exc:
            reply = {"ok": False, "error": str(exc), "kind": type(exc).__name__}
        except Exception as exc:  # pragma: no cover - defensive
            reply = {"ok": False, "error": str(exc), "kind": type(exc).__name__}
        if request_id is not None:
            reply["id"] = request_id
        return reply


def run_server(
    service: IdentityService,
    host: str = "127.0.0.1",
    port: int = 0,
    max_requests: int | None = None,
    on_start: "Any | None" = None,
) -> None:
    """Run the server in the foreground until stopped (CLI entry).

    ``on_start(host, port)`` fires once the socket is bound -- the CLI
    prints the listening line there, after ephemeral-port resolution.
    """

    async def _main() -> None:
        server = IdentityServer(
            service, host=host, port=port, max_requests=max_requests
        )
        bound_host, bound_port = await server.start()
        if on_start is not None:
            on_start(bound_host, bound_port)
        try:
            await server.serve_until_stopped()
        except asyncio.CancelledError:
            await server._shutdown()
            raise

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


class BackgroundServer:
    """An :class:`IdentityServer` on a daemon thread (tests, smoke)::

        with BackgroundServer(service) as (host, port):
            client = ServiceClient(host, port)
    """

    def __init__(
        self,
        service: IdentityService,
        host: str = "127.0.0.1",
        port: int = 0,
        start_timeout_s: float = 30.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.start_timeout_s = start_timeout_s
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._server: "IdentityServer | None" = None
        self._thread: "threading.Thread | None" = None

    def start(self) -> tuple[str, int]:
        started: "Queue[tuple[str, int] | BaseException]" = Queue()

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            server = IdentityServer(self.service, host=self.host, port=self.port)
            self._server = server
            try:
                address = loop.run_until_complete(server.start())
            except BaseException as exc:
                started.put(exc)
                loop.close()
                return
            started.put(address)
            try:
                loop.run_until_complete(server.serve_until_stopped())
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="serve-tcp", daemon=True
        )
        self._thread.start()
        try:
            outcome = started.get(timeout=self.start_timeout_s)
        except Empty:
            # Startup wedged (bind hang, loop never came up).  Returning
            # the timeout as-is would leak the server thread: it might
            # still bind later and serve a socket nobody tracks.  Signal
            # the loop to stop, reap the thread, then fail loudly.
            leaked = ""
            try:
                self.stop(timeout=5.0)
            except RuntimeError:
                leaked = "; the thread resisted joining and is leaked"
            raise ReproError(
                f"BackgroundServer.start: server thread did not report an "
                f"address within {self.start_timeout_s}s; stop was "
                f"signalled{leaked}"
            ) from None
        if isinstance(outcome, BaseException):
            self._thread.join(timeout=5.0)
            raise outcome
        self.host, self.port = outcome
        return outcome

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._server is not None:
            try:
                self._loop.call_soon_threadsafe(self._server.request_stop)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():
                raise RuntimeError(
                    f"BackgroundServer.stop: server thread failed to join "
                    f"within {timeout}s -- thread leaked (in-flight work "
                    f"may still hold the socket)"
                )
            self._thread = None

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


class ServiceClient:
    """Blocking JSON-lines client for :class:`IdentityServer`."""

    def __init__(
        self, host: str, port: int, timeout: float = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._request_id = 0

    def _call(self, message: dict[str, Any]) -> dict[str, Any]:
        self._request_id += 1
        message["id"] = self._request_id
        self._file.write(json.dumps(message).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        reply: dict[str, Any] = json.loads(line)
        if not reply.get("ok"):
            kind = reply.get("kind", "unknown")
            detail = reply.get("error", "no detail")
            if kind == "OverloadedError":
                raise OverloadedError(
                    f"server shed the request: {detail}",
                    retry_after_ms=int(reply.get("retry_after_ms", 0)),
                    reason=str(reply.get("reason", "queue_full")),
                )
            if kind == "DeadlineExceededError":
                raise DeadlineExceededError(
                    f"server reported deadline exceeded: {detail}",
                    overrun_s=float(reply.get("overrun_ms", 0)) / 1e3,
                )
            raise ReproError(f"server error ({kind}): {detail}")
        return reply

    def ping(self) -> bool:
        return bool(self._call({"op": "ping"}).get("pong"))

    def stats(self) -> dict[str, Any]:
        stats: dict[str, Any] = self._call({"op": "stats"})["stats"]
        return stats

    def health(self) -> dict[str, Any]:
        health: dict[str, Any] = self._call({"op": "health"})["health"]
        return health

    def append(self, profiles: np.ndarray) -> tuple[int, int]:
        reply = self._call(
            {"op": "append", "profiles": np.asarray(profiles).tolist()}
        )
        return int(reply["start"]), int(reply["stop"])

    def search(
        self,
        queries: np.ndarray,
        k: int | None = None,
        tenant: str = "default",
        deadline_ms: "int | float | None" = None,
    ) -> list[list[Match]]:
        message: dict[str, Any] = {
            "op": "search",
            "queries": np.asarray(queries).tolist(),
            "tenant": tenant,
        }
        if k is not None:
            message["k"] = k
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        reply = self._call(message)
        return [
            [Match(distance=int(d), database_index=int(i)) for d, i in per_query]
            for per_query in reply["matches"]
        ]

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
