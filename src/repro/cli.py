"""Command-line interface: PLINK-style batch analysis on the framework.

The paper notes that "existing high performance libraries for
population-based analysis such as PLINK do not support the use of
GPUs"; this CLI is the GPU-framework counterpart for the three
workloads::

    repro-snp ld        --input pop.snptxt --device "Titan V" [--stat r2]
    repro-snp ld-prune  --input sites.snpbin --window 50 --r2 0.2
    repro-snp clump     --input sites.snpbin --scores assoc.npy --r2 0.5
    repro-snp identity  --queries q.npz --database db.npz --device "GTX 980"
    repro-snp mixture   --references db.npz --mixture m.snptxt
    repro-snp devices
    repro-snp tune      --device "Vega 64" --algorithm ld [--header out.h]

The three comparison commands take ``--workers N`` to shard the
functional bit-GEMM across N host threads (``--workers 0`` picks a
sensible default for the machine; see :mod:`repro.parallel`), plus
``--strategy {auto,gemm,blocked}`` to pick the shard strategy
(``auto`` consults the persisted host tuning cache),
``--backend {auto,numpy,numba,...}`` to pick the kernel-ABI backend
computing the bit-GEMM (``auto`` defers to ``REPRO_BACKEND`` and the
tuner's per-machine winner; see ``docs/KERNELS.md``),
``--executor {auto,thread,process}`` to pick the shard executor tier
(``process`` runs shards in worker processes over shared-memory
operands; see ``docs/DISTRIBUTED.md``), and ``--no-gram`` to disable
the symmetric Gram fast path (see ``docs/PERF.md``).

Resilience flags (see ``docs/RESILIENCE.md``): ``--retries N`` retries
transient faults up to N times with backoff, ``--verify-sample RATE``
spot-verifies that fraction of output shards against the serial
reference, and ``--inject-faults SPEC`` injects a deterministic fault
schedule (e.g. ``"kernel:1,shard@0:2,seed=7"``) for drills.

Streaming (see ``docs/STREAMING.md``): ``--chunk-rows N`` runs the
out-of-core path -- the streamed input (LD entities, the identity
database, the mixture references) is consumed N rows at a time through
the double-buffered prefetch executor, so it never needs to fit in
memory.  Pair it with the packed ``.snpbin`` format::

    repro-snp ld       --input pop.snpbin --compare samples --chunk-rows 4096
    repro-snp identity --queries q.npz --database db.snpbin --chunk-rows 8192
    repro-snp mixture  --references db.snpbin --mixture m.snptxt --chunk-rows 8192

Inputs are the library's ``.snptxt`` / ``.npz`` / ``.snpbin`` formats
(:mod:`repro.snp.io`, :mod:`repro.io_stream`).  Results go to stdout
(summaries) and optional ``--output`` NPZ files (full tables).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.core.config import Algorithm
from repro.core.framework import SNPComparisonFramework
from repro.core.identity import identity_search
from repro.core.ld import linkage_disequilibrium
from repro.core.mixture import mixture_analysis
from repro.core.planner import derive_config
from repro.core.config import render_header
from repro.core.profiles import RunReport
from repro.core.ldops import ld_clump, ld_prune
from repro.core.streaming import (
    StreamingIdentitySearch,
    StreamingLD,
    StreamingMixture,
)
from repro.errors import ReproError
from repro.gpu.arch import ALL_GPUS, get_gpu
from repro.io_stream import PackedDatasetReader, StreamStats, open_source
from repro.kernels import backend_names
from repro.observability.report import MetricsReport
from repro.observability.trace_export import write_merged_trace
from repro.observability.tracer import Tracer, set_tracer
from repro.resilience.retry import RetryPolicy
from repro.resilience.runtime import ResilienceContext, resilient
from repro.snp.io import (
    load_database_npz,
    load_dataset_npz,
    read_snptxt,
)
from repro.util.tables import render_kv, render_table
from repro.util.validation import check_workers

__all__ = ["main", "build_parser"]


def _load_matrix(path: str) -> np.ndarray:
    """Load a binary matrix from .snptxt, dataset/database .npz or .snpbin."""
    p = Path(path)
    if p.suffix == ".snptxt":
        return read_snptxt(p).matrix
    if p.suffix == ".npz":
        try:
            return load_dataset_npz(p).matrix
        except ReproError:
            return load_database_npz(p).profiles
    if p.suffix == ".snpbin":
        with PackedDatasetReader(p) as reader:
            return reader.read_bits(0, reader.n_rows)
    raise ReproError(
        f"unsupported input format: {path} (use .snptxt, .npz or .snpbin)"
    )


def _save_table(path: str | None, **arrays: np.ndarray) -> None:
    if path:
        np.savez_compressed(path, **arrays)


# -- subcommands ---------------------------------------------------------------


def _cmd_devices(args: argparse.Namespace) -> int:
    rows = [
        [g.name, g.vendor, g.microarchitecture, g.n_c,
         f"{g.global_memory_bytes / 2**30:.1f} GiB"]
        for g in ALL_GPUS
    ]
    print(render_table(
        ["device", "vendor", "microarchitecture", "cores", "memory"], rows,
        title="simulated devices",
    ))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.selfcheck import render_selfcheck, run_selfcheck

    results = run_selfcheck()
    print(render_selfcheck(results))
    return 0 if all(r.passed for r in results) else 1


def _cmd_fsck(args: argparse.Namespace) -> int:
    from repro.io_stream.fsck import FsckReport, fsck_directory, fsck_file

    target = Path(args.path)
    if target.is_dir():
        report = fsck_directory(target, quarantine=args.quarantine)
    else:
        report = FsckReport(files=[fsck_file(target)])
    for file_report in report.files:
        print(file_report.describe())
    print(
        f"fsck: {len(report.files)} file(s), {report.n_ok} ok, "
        f"{report.n_corrupt} corrupt"
    )
    return 0 if report.clean else 1


def _cmd_tune(args: argparse.Namespace) -> int:
    arch = get_gpu(args.device)
    config = derive_config(arch, Algorithm(args.algorithm))
    print(render_kv(config.as_table_row().items(),
                    title=f"{arch.name} / {args.algorithm}"))
    header = render_header(config)
    if args.header:
        Path(args.header).write_text(header, encoding="utf-8")
        print(f"\nwrote configuration header to {args.header}")
    else:
        print("\n" + header)
    return 0


def _resolve_workers(args: argparse.Namespace) -> int | None:
    """Map the --workers flag to an engine worker count.

    ``None`` (flag absent) keeps the serial path; ``0`` asks for the
    machine default; any positive value is used as given.
    """
    workers = getattr(args, "workers", None)
    if workers is None:
        return None
    try:
        workers = check_workers("--workers", workers, zero_means_default=True)
    except ValueError as exc:
        raise ReproError(str(exc)) from None
    if workers == 0:
        from repro.parallel import recommended_workers

        return recommended_workers()
    return workers


def _observability_requested(args: argparse.Namespace) -> bool:
    return bool(getattr(args, "trace", None)) or bool(
        getattr(args, "metrics", False)
    )


@contextlib.contextmanager
def _observability(args: argparse.Namespace) -> Iterator[Tracer | None]:
    """Install a fresh tracer for one command when flags ask for it.

    Yields the tracer (``None`` when neither ``--trace`` nor
    ``--metrics`` was given) and restores the previous process tracer
    on exit, so library callers of :func:`main` are unaffected.
    """
    if not _observability_requested(args):
        yield None
        return
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextlib.contextmanager
def _resilience_scope(
    args: argparse.Namespace,
) -> Iterator[ResilienceContext | None]:
    """Install a resilience context for one command when flags ask.

    ``--retries`` maps to a retry policy of ``retries + 1`` attempts;
    ``--inject-faults`` parses the fault-schedule spec;
    ``--verify-sample`` engages the spot-verification guard.  With none
    of the flags given, the inactive process default stays installed
    (zero overhead).
    """
    spec = getattr(args, "inject_faults", None)
    retries = getattr(args, "retries", 0) or 0
    verify = getattr(args, "verify_sample", 0.0) or 0.0
    if retries < 0:
        raise ReproError(f"--retries must be >= 0, got {retries}")
    if not spec and retries == 0 and verify == 0.0:
        yield None
        return
    policy = (
        RetryPolicy(max_attempts=retries + 1) if retries > 0 else None
    )
    with resilient(plan=spec, policy=policy, verify_sample=verify) as context:
        yield context


def _emit_resilience(report: RunReport) -> None:
    """Print the resilience accounting block when a context was active."""
    res = report.resilience
    if res is None:
        return
    rows: list[tuple[str, object]] = [
        ("faults injected", res.faults_injected),
        ("retries", res.retries),
        ("shards quarantined", res.quarantined),
        ("tiles verified", res.tiles_verified),
        ("verify mismatches", res.verify_mismatches),
        ("devices dropped", res.devices_dropped),
    ]
    if res.events:
        rows.append((
            "fired",
            ", ".join(
                f"{e.kind}@{e.target}#{e.attempt}" for e in res.events
            ),
        ))
    print()
    print(render_kv(rows, title="resilience"))


def _observed_framework(
    args: argparse.Namespace,
    tracer: Tracer | None,
    algorithm: Algorithm,
) -> SNPComparisonFramework | None:
    """Pre-build the framework when tracing, so the command can reach
    ``last_queue`` for the merged trace export afterwards."""
    if tracer is None:
        return None
    return SNPComparisonFramework(
        args.device,
        algorithm,
        workers=_resolve_workers(args),
        gram=not getattr(args, "no_gram", False),
        strategy=getattr(args, "strategy", "auto"),
        backend=getattr(args, "backend", "auto"),
        executor=getattr(args, "executor", "auto"),
    )


def _emit_observability(
    args: argparse.Namespace,
    tracer: Tracer | None,
    framework: SNPComparisonFramework | None,
    report: RunReport,
) -> None:
    """Print the metrics block and/or write the merged Chrome trace."""
    if tracer is None:
        return
    if getattr(args, "metrics", False) and report.metrics is not None:
        print()
        print(report.metrics)
    trace_path = getattr(args, "trace", None)
    if trace_path:
        queues = []
        if framework is not None and framework.last_queue is not None:
            queues.append(framework.last_queue)
        n_events = write_merged_trace(trace_path, tracer, queues)
        print(f"\nwrote {n_events} trace events to {trace_path}")


def _emit_stream_stats(stats: StreamStats) -> None:
    """Print the streamed-ingest accounting block."""
    print()
    print(render_kv([
        ("chunks", stats.chunks),
        ("bytes read", stats.bytes_read),
        ("read time", f"{stats.read_s * 1e3:.1f} ms"),
        ("prefetch stall", f"{stats.stall_s * 1e3:.1f} ms"),
        ("stall fraction", f"{stats.stall_fraction:.1%}"),
    ], title="streaming"))


def _emit_streaming_observability(
    args: argparse.Namespace,
    tracer: Tracer | None,
    framework: SNPComparisonFramework | None,
) -> None:
    """Streaming counterpart of :func:`_emit_observability`.

    A streamed run has no single per-run metrics report, so the metrics
    block covers everything the command's tracer saw (all chunks); the
    merged trace keeps the last chunk's device lane.
    """
    if tracer is None:
        return
    if getattr(args, "metrics", False):
        print()
        print(MetricsReport.from_tracer(tracer))
    trace_path = getattr(args, "trace", None)
    if trace_path:
        queues = []
        if framework is not None and framework.last_queue is not None:
            queues.append(framework.last_queue)
        n_events = write_merged_trace(trace_path, tracer, queues)
        print(f"\nwrote {n_events} trace events to {trace_path}")


def _cmd_ld(args: argparse.Namespace) -> int:
    streaming = args.chunk_rows is not None
    if streaming and args.compare != "samples":
        raise ReproError(
            "--chunk-rows streams rows as the compared entities and "
            "requires --compare samples (site-major streaming needs a "
            "transposed input file)"
        )
    matrix = None if streaming else _load_matrix(args.input)
    with _observability(args) as tracer, _resilience_scope(args):
        framework = _observed_framework(args, tracer, Algorithm.LD)
        stats: StreamStats | None = None
        if streaming:
            streamer = StreamingLD(
                device=args.device,
                workers=_resolve_workers(args),
                gram=not args.no_gram,
                strategy=args.strategy,
                backend=args.backend,
                executor=args.executor,
                framework=framework,
            )
            with open_source(args.input) as source:
                result = streamer.run(source, args.chunk_rows)
            stats = streamer.last_stats
        else:
            result = linkage_disequilibrium(
                matrix,
                device=args.device,
                compare=args.compare,
                framework=framework,
                workers=_resolve_workers(args),
                gram=not args.no_gram,
                strategy=args.strategy,
                backend=args.backend,
                executor=args.executor,
            )
        stat = {
            "r2": result.r_squared, "d": result.d, "dprime": result.d_prime
        }[args.stat]
        off = stat[~np.eye(stat.shape[0], dtype=bool)]
        print(render_kv([
            ("entities compared", stat.shape[0]),
            ("observations", result.n_observations),
            (f"mean {args.stat}", f"{off.mean():.5f}"),
            (f"max {args.stat}", f"{off.max():.5f}"),
            (f"pairs with {args.stat} > {args.threshold}",
             int((off > args.threshold).sum() // 2)),
            ("simulated end-to-end", f"{result.report.end_to_end_s * 1e3:.1f} ms"),
        ], title=f"LD on {args.device}"))
        if stats is not None:
            _emit_stream_stats(stats)
        if streaming:
            _emit_streaming_observability(args, tracer, framework)
        else:
            _emit_observability(args, tracer, framework, result.report)
        _emit_resilience(result.report)
    _save_table(args.output, counts=result.counts, stat=stat)
    return 0


def _load_scores(path: str) -> np.ndarray:
    """Load the per-site clump scores: .npy, .npz (``scores`` key) or text."""
    p = Path(path)
    if p.suffix == ".npy":
        return np.asarray(np.load(p), dtype=np.float64)
    if p.suffix == ".npz":
        with np.load(p) as payload:
            key = "scores" if "scores" in payload else payload.files[0]
            return np.asarray(payload[key], dtype=np.float64)
    try:
        return np.asarray(np.loadtxt(p, dtype=np.float64), dtype=np.float64)
    except ValueError as exc:
        raise ReproError(f"--scores: cannot parse {path}: {exc}") from None


def _ldops_source(args: argparse.Namespace) -> np.ndarray | str:
    """The site-major input feed for ld-prune/clump.

    ``--transpose`` loads the whole matrix and flips a sample-major
    file into site rows (in-memory only); otherwise the path streams
    through :func:`repro.io_stream.open_source` as-is.
    """
    if args.transpose:
        return np.ascontiguousarray(_load_matrix(args.input).T)
    return args.input


def _emit_ldops_footer(
    args: argparse.Namespace,
    tracer: Tracer | None,
    framework: SNPComparisonFramework | None,
    stats: StreamStats | None,
) -> None:
    if stats is not None:
        _emit_stream_stats(stats)
    _emit_streaming_observability(args, tracer, framework)


def _cmd_ld_prune(args: argparse.Namespace) -> int:
    """Windowed greedy LD pruning over a streamed site-major input."""
    with _observability(args) as tracer, _resilience_scope(args):
        framework = _observed_framework(args, tracer, Algorithm.LD)
        result = ld_prune(
            _ldops_source(args),
            window=args.window,
            r2=args.r2,
            chunk_rows=args.chunk_rows or 4096,
            device=args.device,
            workers=_resolve_workers(args),
            gram=not args.no_gram,
            strategy=args.strategy,
            backend=args.backend,
            executor=args.executor,
            framework=framework,
        )
        print(render_kv([
            ("sites scanned", result.n_sites),
            ("window (sites)", result.window),
            ("r2 threshold", f"{result.r2:g}"),
            ("kept", len(result.kept)),
            ("pruned", len(result.pruned)),
            ("pairs tested", result.pairs_tested),
            ("peak window sites", result.peak_window_sites),
            ("simulated end-to-end",
             f"{result.simulated_seconds * 1e3:.1f} ms"),
        ], title=f"LD pruning on {args.device}"))
        _emit_ldops_footer(args, tracer, framework, result.stream_stats)
    _save_table(
        args.output,
        kept=result.kept, pruned=result.pruned, blocker=result.blocker,
    )
    return 0


def _cmd_clump(args: argparse.Namespace) -> int:
    """Index-variant clumping over a streamed site-major input."""
    scores = _load_scores(args.scores)
    with _observability(args) as tracer, _resilience_scope(args):
        framework = _observed_framework(args, tracer, Algorithm.LD)
        result = ld_clump(
            _ldops_source(args),
            scores,
            window=args.window,
            r2=args.r2,
            chunk_rows=args.chunk_rows or 4096,
            device=args.device,
            workers=_resolve_workers(args),
            gram=not args.no_gram,
            strategy=args.strategy,
            backend=args.backend,
            executor=args.executor,
            framework=framework,
        )
        n_absorbed = int((result.assignment != np.arange(result.n_sites)).sum())
        print(render_kv([
            ("sites scanned", result.n_sites),
            ("window (sites)", result.window),
            ("r2 threshold", f"{result.r2:g}"),
            ("clumps formed", len(result.clumps)),
            ("sites absorbed", n_absorbed),
            ("pairs tested", result.pairs_tested),
            ("peak window sites", result.peak_window_sites),
            ("simulated end-to-end",
             f"{result.simulated_seconds * 1e3:.1f} ms"),
        ], title=f"LD clumping on {args.device}"))
        top = result.clumps[:10]
        if top:
            print()
            print(render_table(
                ["index site", "score", "members"],
                [
                    [c.index_site, f"{scores[c.index_site]:g}",
                     ", ".join(map(str, c.members[:12])) or "(none)"]
                    for c in top
                ],
                title="top clumps (rank order)",
            ))
            if len(result.clumps) > 10:
                print(f"... and {len(result.clumps) - 10} more")
        _emit_ldops_footer(args, tracer, framework, result.stream_stats)
    _save_table(
        args.output,
        index_sites=result.index_sites,
        assignment=result.assignment,
        scores=scores,
    )
    return 0


def _cmd_identity_streaming(args: argparse.Namespace) -> int:
    """Out-of-core identity: stream the database, retain top-k."""
    queries = _load_matrix(args.queries)
    with _observability(args) as tracer, _resilience_scope(args):
        framework = _observed_framework(args, tracer, Algorithm.FASTID_IDENTITY)
        search = StreamingIdentitySearch(
            queries,
            k=args.top_k,
            device=args.device,
            workers=_resolve_workers(args),
            strategy=args.strategy,
            backend=args.backend,
            executor=args.executor,
            framework=framework,
        )
        with open_source(args.database) as source:
            stats = search.consume(source, args.chunk_rows)
        print(render_kv([
            ("queries", search.n_queries),
            ("database profiles", search.rows_seen),
            ("sites", queries.shape[1]),
            ("candidates retained per query", search.k),
            ("simulated end-to-end", f"{search.simulated_seconds * 1e3:.1f} ms"),
        ], title=f"streaming identity search on {args.device}"))
        hits = [
            (qi, m.database_index, m.distance)
            for qi, matches in enumerate(search.all_matches())
            for m in matches
        ]
        if hits:
            print()
            print(render_table(
                ["query", "profile", "distance"],
                [[q, p, d] for q, p, d in hits[:20]],
            ))
            if len(hits) > 20:
                print(f"... and {len(hits) - 20} more")
        _emit_stream_stats(stats)
        _emit_streaming_observability(args, tracer, framework)
    if args.output and hits:
        _save_table(
            args.output,
            query=np.array([q for q, _, _ in hits], dtype=np.int64),
            profile=np.array([p for _, p, _ in hits], dtype=np.int64),
            distance=np.array([d for _, _, d in hits], dtype=np.int64),
        )
    return 0


def _cmd_identity(args: argparse.Namespace) -> int:
    if args.chunk_rows is not None:
        return _cmd_identity_streaming(args)
    queries = _load_matrix(args.queries)
    database = _load_matrix(args.database)
    with _observability(args) as tracer, _resilience_scope(args):
        framework = _observed_framework(args, tracer, Algorithm.FASTID_IDENTITY)
        result = identity_search(
            queries,
            database,
            device=args.device,
            framework=framework,
            workers=_resolve_workers(args),
            gram=not args.no_gram,
            strategy=args.strategy,
            backend=args.backend,
            executor=args.executor,
        )
        hits = result.matches(args.max_distance)
        print(render_kv([
            ("queries", queries.shape[0]),
            ("database profiles", database.shape[0]),
            ("sites", queries.shape[1]),
            (f"matches (distance <= {args.max_distance})", len(hits)),
            ("simulated end-to-end", f"{result.report.end_to_end_s * 1e3:.1f} ms"),
        ], title=f"identity search on {args.device}"))
        if hits:
            print()
            print(render_table(
                ["query", "profile", "distance"],
                [[q, p, d] for q, p, d in hits[:20]],
            ))
            if len(hits) > 20:
                print(f"... and {len(hits) - 20} more")
        _emit_observability(args, tracer, framework, result.report)
        _emit_resilience(result.report)
    _save_table(args.output, distances=result.distances)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the long-lived identity-search service (docs/SERVING.md)."""
    from repro.serve import IdentityService, ProfileIndex, run_server

    if bool(args.index) == bool(args.database):
        raise ReproError(
            "serve: give exactly one of --index (shard directory) or "
            "--database (matrix file to load into a memory index)"
        )
    with _observability(args) as tracer, _resilience_scope(args):
        if args.index:
            index = ProfileIndex(
                args.index, shard_rows=args.shard_rows,
                word_bits=get_gpu(args.device).word_bits,
            )
        else:
            profiles = _load_matrix(args.database)
            index = ProfileIndex(
                n_bits=int(profiles.shape[1]), shard_rows=args.shard_rows
            )
            index.append(profiles)
        service = IdentityService(
            index,
            k=args.top_k,
            device=args.device,
            workers=_resolve_workers(args),
            strategy=args.strategy,
            backend=args.backend,
            executor=args.executor,
            window_s=args.window_ms / 1e3,
            max_batch_rows=args.max_batch_rows,
        )
        with service, index:
            print(render_kv([
                ("database profiles", index.n_rows),
                ("sites", index.n_bits),
                ("segments", index.n_segments),
                ("device", args.device),
                ("coalescing window", f"{args.window_ms:.1f} ms"),
                ("max batch rows", args.max_batch_rows),
            ], title="identity service"))
            run_server(
                service,
                host=args.host,
                port=args.port,
                max_requests=args.max_requests,
                on_start=lambda host, port: print(
                    f"listening on {host}:{port} (JSON lines; "
                    f"ops: search, append, stats, ping)",
                    flush=True,
                ),
            )
            summaries = service.ledger.summary()
            if summaries:
                print()
                print(render_table(
                    ["tenant", "queries", "failures", "p50 ms", "p99 ms", "qps"],
                    [
                        [name, int(s["queries"]), int(s["failures"]),
                         f"{s['p50_s'] * 1e3:.1f}", f"{s['p99_s'] * 1e3:.1f}",
                         f"{s['qps']:.1f}"]
                        for name, s in summaries.items()
                    ],
                    title="tenants served",
                ))
        if tracer is not None and getattr(args, "metrics", False):
            print()
            print(MetricsReport.from_tracer(tracer))
    return 0


def _cmd_mixture(args: argparse.Namespace) -> int:
    streaming = args.chunk_rows is not None
    references = None if streaming else _load_matrix(args.references)
    mixture = _load_matrix(args.mixture)
    with _observability(args) as tracer, _resilience_scope(args):
        framework = _observed_framework(args, tracer, Algorithm.FASTID_MIXTURE)
        stats: StreamStats | None = None
        if streaming:
            streamer = StreamingMixture(
                mixture,
                device=args.device,
                workers=_resolve_workers(args),
                strategy=args.strategy,
                backend=args.backend,
                executor=args.executor,
                framework=framework,
            )
            with open_source(args.references) as source:
                stats = streamer.consume(source, args.chunk_rows)
            result = streamer.result()
            n_references = streamer.rows_seen
        else:
            result = mixture_analysis(
                references,
                mixture,
                device=args.device,
                framework=framework,
                workers=_resolve_workers(args),
                gram=not args.no_gram,
                strategy=args.strategy,
                backend=args.backend,
                executor=args.executor,
            )
            n_references = references.shape[0]
        print(render_kv([
            ("references", n_references),
            ("mixtures", mixture.shape[0]),
            ("kernel",
             "AND (pre-negated DB)" if result.prenegated else "fused AND-NOT"),
            ("simulated end-to-end", f"{result.report.end_to_end_s * 1e3:.1f} ms"),
        ], title=f"mixture analysis on {args.device}"))
        for mi in range(mixture.shape[0]):
            flagged = result.consistent_contributors(mi, args.max_score)
            ids = ", ".join(str(r) for r, _ in flagged[:15]) or "(none)"
            print(f"mixture {mi}: {len(flagged)} consistent references: {ids}")
        if stats is not None:
            _emit_stream_stats(stats)
        if streaming:
            _emit_streaming_observability(args, tracer, framework)
        else:
            _emit_observability(args, tracer, framework, result.report)
        _emit_resilience(result.report)
    _save_table(args.output, scores=result.scores)
    return 0


# -- parser --------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-snp",
        description="SNP comparisons on the simulated portable GPU framework.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list simulated devices").set_defaults(
        func=_cmd_devices
    )

    sub.add_parser(
        "verify", help="run the installation self-check battery"
    ).set_defaults(func=_cmd_verify)

    fsck = sub.add_parser(
        "fsck", help="verify .snpbin shard checksums, quarantine corruption"
    )
    fsck.add_argument("path", help="a .snpbin file or a shard directory")
    fsck.add_argument(
        "--quarantine",
        action="store_true",
        help="rename corrupt shards to *.snpbin.quarantined so a "
        "reopened index skips them (bytes are preserved)",
    )
    fsck.set_defaults(func=_cmd_fsck)

    tune = sub.add_parser("tune", help="derive a device configuration")
    tune.add_argument("--device", required=True)
    tune.add_argument(
        "--algorithm", default="ld", choices=[a.value for a in Algorithm]
    )
    tune.add_argument("--header", help="write the C header to this path")
    tune.set_defaults(func=_cmd_tune)

    workers_help = (
        "host threads for the functional compute "
        "(0 = machine default, omit = serial)"
    )
    trace_help = (
        "write a merged Chrome trace (host spans + simulated device "
        "lanes) to this JSON file"
    )
    metrics_help = "print the observability counter/span report"
    strategy_help = (
        "host shard strategy (auto consults the persisted tuning cache)"
    )
    backend_help = (
        "kernel-ABI backend for the functional bit-GEMM (auto defers to "
        "REPRO_BACKEND, then the tuner's per-machine winner; see "
        "docs/KERNELS.md)"
    )
    executor_help = (
        "shard executor tier: thread pool, worker processes over "
        "shared-memory operands, or auto (tuner-raced winner; see "
        "docs/DISTRIBUTED.md)"
    )
    no_gram_help = (
        "disable the symmetric Gram fast path (compute the full table "
        "even for self-comparisons)"
    )

    def add_observability_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--trace", metavar="PATH", help=trace_help)
        cmd.add_argument("--metrics", action="store_true", help=metrics_help)

    retries_help = (
        "retry transient device faults up to N times with exponential "
        "backoff (0 = no retries; see docs/RESILIENCE.md)"
    )
    inject_help = (
        "inject a deterministic fault schedule for resilience drills, "
        "e.g. 'kernel:1,shard@0:2,bitflip@0,seed=7'"
    )
    verify_help = (
        "spot-verify this fraction of output shards against the serial "
        "reference (0 disables, 1 checks every shard)"
    )
    chunk_help = (
        "stream the large input (LD entities, identity database, "
        "mixture references) N rows at a time through the "
        "double-buffered prefetch executor instead of loading it whole "
        "(out-of-core; see docs/STREAMING.md)"
    )

    def add_compute_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--workers", type=int, default=None, help=workers_help)
        cmd.add_argument(
            "--strategy", default="auto", choices=["auto", "gemm", "blocked"],
            help=strategy_help,
        )
        cmd.add_argument(
            "--backend", default="auto",
            choices=["auto", *backend_names()], help=backend_help,
        )
        cmd.add_argument(
            "--executor", default="auto",
            choices=["auto", "thread", "process"], help=executor_help,
        )
        cmd.add_argument("--no-gram", action="store_true", help=no_gram_help)
        cmd.add_argument(
            "--retries", type=int, default=0, metavar="N", help=retries_help
        )
        cmd.add_argument(
            "--inject-faults", metavar="SPEC", help=inject_help
        )
        cmd.add_argument(
            "--verify-sample", type=float, default=0.0, metavar="RATE",
            help=verify_help,
        )
        cmd.add_argument(
            "--chunk-rows", type=int, default=None, metavar="N",
            help=chunk_help,
        )

    ld = sub.add_parser("ld", help="all-pairs linkage disequilibrium")
    ld.add_argument(
        "--input", required=True, help=".snptxt, dataset .npz or .snpbin"
    )
    ld.add_argument("--device", default="Titan V")
    ld.add_argument("--compare", default="sites", choices=["sites", "samples"])
    ld.add_argument("--stat", default="r2", choices=["r2", "d", "dprime"])
    ld.add_argument("--threshold", type=float, default=0.8)
    add_compute_flags(ld)
    ld.add_argument("--output", help="write tables to this .npz")
    add_observability_flags(ld)
    ld.set_defaults(func=_cmd_ld)

    transpose_help = (
        "load the input whole and transpose it first (turns a "
        "sample-major matrix into the site rows these commands scan; "
        "in-memory only, so best for .snptxt/.npz inputs)"
    )
    ldops_input_help = (
        "site-major .snptxt, .npz or .snpbin (rows are the sites "
        "being scanned, columns the samples; see docs/LDOPS.md)"
    )

    prune = sub.add_parser(
        "ld-prune",
        help="windowed greedy r2 pruning (PLINK --indep-pairwise style, "
        "streamed; see docs/LDOPS.md)",
    )
    prune.add_argument("--input", required=True, help=ldops_input_help)
    prune.add_argument("--device", default="Titan V")
    prune.add_argument(
        "--window", type=int, default=50, metavar="N",
        help="sliding window length in sites (pairs further apart are "
        "never tested)",
    )
    prune.add_argument(
        "--r2", type=float, default=0.2, metavar="R2",
        help="prune a site when r2 with a kept window site exceeds this",
    )
    prune.add_argument("--transpose", action="store_true", help=transpose_help)
    add_compute_flags(prune)
    prune.add_argument(
        "--output", help="write kept/pruned/blocker tables to this .npz"
    )
    add_observability_flags(prune)
    prune.set_defaults(func=_cmd_ld_prune)

    clump = sub.add_parser(
        "clump",
        help="index-variant clumping by score rank (PLINK --clump style, "
        "streamed; see docs/LDOPS.md)",
    )
    clump.add_argument("--input", required=True, help=ldops_input_help)
    clump.add_argument(
        "--scores", required=True,
        help="per-site scores, higher is better (e.g. -log10 p): "
        ".npy, .npz ('scores' key) or whitespace text",
    )
    clump.add_argument("--device", default="Titan V")
    clump.add_argument(
        "--window", type=int, default=250, metavar="N",
        help="sliding window length in sites (absorption never reaches "
        "further)",
    )
    clump.add_argument(
        "--r2", type=float, default=0.5, metavar="R2",
        help="absorb a site into an index variant when r2 is at or "
        "above this",
    )
    clump.add_argument("--transpose", action="store_true", help=transpose_help)
    add_compute_flags(clump)
    clump.add_argument(
        "--output", help="write index_sites/assignment tables to this .npz"
    )
    add_observability_flags(clump)
    clump.set_defaults(func=_cmd_clump)

    ident = sub.add_parser("identity", help="FastID identity search")
    ident.add_argument("--queries", required=True)
    ident.add_argument("--database", required=True)
    ident.add_argument("--device", default="Titan V")
    ident.add_argument("--max-distance", type=int, default=0)
    ident.add_argument(
        "--top-k", type=int, default=5, metavar="K",
        help="candidates retained per query on the streaming path "
        "(with --chunk-rows)",
    )
    add_compute_flags(ident)
    ident.add_argument("--output")
    add_observability_flags(ident)
    ident.set_defaults(func=_cmd_identity)

    serve = sub.add_parser(
        "serve",
        help="boot the long-lived identity-search service "
        "(JSON-lines TCP; see docs/SERVING.md)",
    )
    serve.add_argument(
        "--index", metavar="DIR",
        help="shard directory of .snpbin files kept mmap-resident "
        "(online appends seal new shards here)",
    )
    serve.add_argument(
        "--database", metavar="FILE",
        help=".snptxt/.npz/.snpbin matrix loaded into a memory index",
    )
    serve.add_argument("--device", default="Titan V")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7433,
        help="TCP port (0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--top-k", type=int, default=5, metavar="K",
        help="default candidates retained per query "
        "(requests may override per call)",
    )
    serve.add_argument(
        "--window-ms", type=float, default=5.0, metavar="MS",
        help="coalescing window: concurrent queries admitted within "
        "this span of the first arrival share one GEMM panel",
    )
    serve.add_argument(
        "--max-batch-rows", type=int, default=512, metavar="N",
        help="query-row budget per coalesced batch (cut early at N)",
    )
    serve.add_argument(
        "--shard-rows", type=int, default=4096, metavar="N",
        help="appended rows accumulated before sealing a new .snpbin "
        "shard (--index mode)",
    )
    serve.add_argument(
        "--max-requests", type=int, default=None, metavar="N",
        help="stop after serving N search requests (default: run until "
        "interrupted; used by CI and tests)",
    )
    add_compute_flags(serve)
    add_observability_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    mix = sub.add_parser("mixture", help="FastID mixture analysis")
    mix.add_argument("--references", required=True)
    mix.add_argument("--mixture", required=True)
    mix.add_argument("--device", default="Titan V")
    mix.add_argument("--max-score", type=int, default=0)
    add_compute_flags(mix)
    mix.add_argument("--output")
    add_observability_flags(mix)
    mix.set_defaults(func=_cmd_mixture)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
