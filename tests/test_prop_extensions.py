"""Property-based tests for the sparse and multi-GPU extensions."""

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.blis.gemm import bit_gemm_fast
from repro.blis.microkernel import ComparisonOp
from repro.multigpu.partition import partition_database
from repro.sparse.auto import auto_comparison
from repro.sparse.kernels import sparse_comparison, sparse_dense_comparison
from repro.sparse.matrix import SparseSNPMatrix
from repro.util.bitops import pack_bits

bit_matrices = hnp.arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(1, 8), st.integers(1, 80)),
    elements=st.integers(0, 1),
)

ops = st.sampled_from([ComparisonOp.AND, ComparisonOp.XOR, ComparisonOp.ANDNOT])


class TestSparseProperties:
    @settings(max_examples=60, deadline=None)
    @given(bit_matrices)
    def test_roundtrip(self, bits):
        sp = SparseSNPMatrix.from_dense(bits)
        assert (sp.to_dense() == bits).all()
        assert sp.nnz == bits.sum()

    @settings(max_examples=50, deadline=None)
    @given(bit_matrices, bit_matrices, ops)
    def test_sparse_equals_dense_kernel(self, a_bits, b_bits, op):
        width = min(a_bits.shape[1], b_bits.shape[1])
        a_bits, b_bits = a_bits[:, :width], b_bits[:, :width]
        sa = SparseSNPMatrix.from_dense(a_bits)
        sb = SparseSNPMatrix.from_dense(b_bits)
        dense = bit_gemm_fast(pack_bits(a_bits, 32), pack_bits(b_bits, 32), op)
        assert (sparse_comparison(sa, sb, op) == dense).all()

    @settings(max_examples=50, deadline=None)
    @given(bit_matrices, bit_matrices, ops)
    def test_sparse_dense_path_equals_dense(self, a_bits, b_bits, op):
        width = min(a_bits.shape[1], b_bits.shape[1])
        a_bits, b_bits = a_bits[:, :width], b_bits[:, :width]
        sa = SparseSNPMatrix.from_dense(a_bits)
        dense = bit_gemm_fast(pack_bits(a_bits, 32), pack_bits(b_bits, 32), op)
        assert (sparse_dense_comparison(sa, b_bits, op) == dense).all()

    @settings(max_examples=40, deadline=None)
    @given(bit_matrices, ops)
    def test_auto_comparison_format_agnostic(self, bits, op):
        table, choice = auto_comparison(bits, op=op)
        dense = bit_gemm_fast(pack_bits(bits, 32), pack_bits(bits, 32), op)
        assert (table == dense).all()

    @settings(max_examples=40, deadline=None)
    @given(bit_matrices)
    def test_subset_rows_preserves_content(self, bits):
        sp = SparseSNPMatrix.from_dense(bits)
        reversed_rows = list(range(sp.n_rows))[::-1]
        sub = sp.subset_rows(reversed_rows)
        assert (sub.to_dense() == bits[reversed_rows]).all()


class TestPartitionProperties:
    @settings(max_examples=80)
    @given(
        st.integers(0, 100_000),
        st.integers(1, 32),
        st.integers(1, 1024),
    )
    def test_partition_is_exact_cover(self, n_rows, n_devices, align):
        slices = partition_database(n_rows, n_devices, align)
        assert len(slices) == n_devices
        # Contiguous, ordered, disjoint, covering.
        position = 0
        for s in slices:
            assert s.row_start == position
            assert s.row_stop >= s.row_start
            position = s.row_stop
        assert position == n_rows

    @settings(max_examples=80)
    @given(
        st.integers(1, 100_000),
        st.integers(1, 32),
        st.integers(1, 1024),
    )
    def test_partition_alignment(self, n_rows, n_devices, align):
        slices = partition_database(n_rows, n_devices, align)
        for s in slices[:-1]:
            # Interior boundaries land on alignment multiples (the
            # final stop may be the ragged total).
            assert s.row_stop % align == 0 or s.row_stop == n_rows

    @settings(max_examples=60)
    @given(st.integers(1, 10_000), st.integers(1, 16))
    def test_partition_balanced(self, n_rows, n_devices):
        slices = partition_database(n_rows, n_devices, align=1)
        sizes = [s.n_rows for s in slices]
        assert max(sizes) - min(sizes) <= 1
