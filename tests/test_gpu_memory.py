"""Tests for repro.gpu.memory: allocation tracking and bank conflicts."""

import numpy as np
import pytest

from repro.errors import AllocationError, DeviceError
from repro.gpu.arch import GTX_980
from repro.gpu.memory import GlobalMemoryTracker, SharedMemoryBankModel


class TestGlobalMemoryTracker:
    def test_allocate_and_free(self):
        t = GlobalMemoryTracker(GTX_980)
        h = t.allocate(1024)
        assert t.allocated_bytes == 1024
        assert t.n_live == 1
        t.free(h)
        assert t.allocated_bytes == 0
        assert t.n_live == 0

    def test_max_alloc_enforced(self):
        t = GlobalMemoryTracker(GTX_980)
        with pytest.raises(AllocationError, match="max allocation"):
            t.allocate(GTX_980.max_alloc_bytes + 1)

    def test_total_memory_enforced(self):
        t = GlobalMemoryTracker(GTX_980)
        chunk = GTX_980.max_alloc_bytes
        handles = []
        # 3.934 GiB total, 0.983 GiB per alloc: the 5th chunk overflows.
        for _ in range(4):
            handles.append(t.allocate(chunk))
        with pytest.raises(AllocationError, match="global memory"):
            t.allocate(chunk)
        t.free(handles[0])
        t.allocate(chunk)  # fits again after freeing

    def test_double_free_rejected(self):
        t = GlobalMemoryTracker(GTX_980)
        h = t.allocate(64)
        t.free(h)
        with pytest.raises(DeviceError):
            t.free(h)

    def test_zero_size_rejected(self):
        t = GlobalMemoryTracker(GTX_980)
        with pytest.raises(AllocationError):
            t.allocate(0)

    def test_free_bytes(self):
        t = GlobalMemoryTracker(GTX_980)
        t.allocate(1000)
        assert t.free_bytes == GTX_980.global_memory_bytes - 1000


class TestSharedMemoryBankModel:
    banks = SharedMemoryBankModel(n_banks=32)

    def test_bank_of(self):
        assert self.banks.bank_of(0) == 0
        assert self.banks.bank_of(33) == 1
        with pytest.raises(DeviceError):
            self.banks.bank_of(-1)

    def test_unit_stride_conflict_free(self):
        # Consecutive words hit distinct banks.
        assert self.banks.strided_conflict_factor(1, 32) == 1

    def test_power_of_two_stride_conflicts(self):
        # Stride 32 puts every access in bank 0: full serialization.
        assert self.banks.strided_conflict_factor(32, 32) == 32
        # Stride 2 halves the banks in use: 2-way conflicts.
        assert self.banks.strided_conflict_factor(2, 32) == 2

    def test_odd_stride_conflict_free(self):
        assert self.banks.strided_conflict_factor(31, 32) == 1
        assert self.banks.strided_conflict_factor(5, 32) == 1

    def test_broadcast_is_free(self):
        # All threads reading the same address: one pass.
        addrs = np.zeros(32, dtype=np.int64)
        assert self.banks.conflict_factor(addrs) == 1

    def test_mixed_pattern(self):
        # Two distinct addresses in the same bank: 2 passes.
        addrs = np.array([0, 32, 1, 2, 3])
        assert self.banks.conflict_factor(addrs) == 2

    def test_empty_access(self):
        assert self.banks.conflict_factor(np.array([], dtype=np.int64)) == 1

    def test_negative_address_rejected(self):
        with pytest.raises(DeviceError):
            self.banks.conflict_factor(np.array([-5]))

    def test_fewer_threads_than_banks(self):
        assert self.banks.strided_conflict_factor(1, 8) == 1
        assert self.banks.strided_conflict_factor(0, 0) == 1
