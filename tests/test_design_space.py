"""Tests for repro.model.design_space."""

import pytest

from repro.blis.microkernel import ComparisonOp
from repro.errors import ModelError
from repro.gpu.arch import GTX_980, VEGA_64
from repro.model.design_space import (
    SweepResult,
    SweepPoint,
    kernel_time_metric,
    peak_metric,
    sweep_parameter,
)


class TestSweepMechanics:
    def test_arch_field_sweep(self):
        result = sweep_parameter(
            GTX_980, "popc_units", [2, 4, 8], peak_metric()
        )
        assert result.parameter == "popc_units"
        assert [p.value for p in result.points] == [2, 4, 8]
        # POPC-bound regime: peak doubles with units.
        ratios = result.improvements()
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_memory_field_sweep(self):
        result = sweep_parameter(
            GTX_980,
            "memory.host_bandwidth_gbs",
            [6.0, 12.0],
            lambda a: a.memory.host_bandwidth_gbs,
        )
        assert result.best.value == 12.0

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ModelError, match="unknown parameter"):
            sweep_parameter(GTX_980, "warp_speed", [1], peak_metric())

    def test_empty_values_rejected(self):
        with pytest.raises(ModelError):
            sweep_parameter(GTX_980, "popc_units", [], peak_metric())


class TestAnalysis:
    def make(self, metrics, higher=True):
        points = tuple(
            SweepPoint(value=i, metric=m) for i, m in enumerate(metrics)
        )
        return SweepResult(parameter="x", points=points, higher_is_better=higher)

    def test_best_higher(self):
        assert self.make([1.0, 3.0, 2.0]).best.metric == 3.0

    def test_best_lower(self):
        assert self.make([3.0, 1.0, 2.0], higher=False).best.metric == 1.0

    def test_saturation_value(self):
        # 2 reaches within 2% of the best (4.0 at index 3).
        result = self.make([1.0, 3.95, 3.99, 4.0])
        assert result.saturation_value(tolerance=0.02) == 1

    def test_saturation_lower_is_better(self):
        result = self.make([4.0, 1.02, 1.0], higher=False)
        assert result.saturation_value(tolerance=0.03) == 1


class TestPhysicalSweeps:
    def test_popc_saturation_at_alu_parity(self):
        # Beyond 16 units the 2-op ALU pipe binds (Section V-D logic).
        result = sweep_parameter(
            GTX_980, "popc_units", [2, 4, 8, 16, 32, 64], peak_metric()
        )
        assert result.saturation_value() == 16

    def test_alu_sweep_on_vega(self):
        # Vega is ALU-bound: widening the ALU helps until POPC parity
        # (16 units serve 1 popc/word vs alu/2 words -> knee at 32).
        result = sweep_parameter(
            VEGA_64, "alu_units", [8, 16, 32, 64], peak_metric(ComparisonOp.AND)
        )
        assert result.saturation_value() == 32

    def test_kernel_time_metric_responds_to_cores(self):
        metric = kernel_time_metric(m=2048, n=2048, k_words=64, grid=(4, 4))
        fast = metric(GTX_980)
        import dataclasses

        slower_arch = dataclasses.replace(GTX_980, frequency_ghz=0.5)
        assert metric(slower_arch) > fast

    def test_bandwidth_sweep_changes_nothing_for_kernel_time(self):
        # Kernel cycles don't consume host bandwidth: a pure model
        # separation check.
        metric = kernel_time_metric(m=1024, n=1024, k_words=32)
        result = sweep_parameter(
            GTX_980, "memory.host_bandwidth_gbs", [6.0, 24.0], metric,
            higher_is_better=False,
        )
        assert result.points[0].metric == result.points[1].metric
