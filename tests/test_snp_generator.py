"""Tests for repro.snp.generator: synthetic populations."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.snp.generator import (
    PopulationModel,
    generate_population,
    generate_uniform_matrix,
)
from repro.snp.stats import ld_r_squared


class TestPopulationModel:
    def test_valid_defaults(self):
        m = PopulationModel(n_samples=10, n_sites=20)
        assert m.block_size == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_samples": 0, "n_sites": 10},
            {"n_samples": 10, "n_sites": 0},
            {"n_samples": 10, "n_sites": 10, "maf_floor": 0.6},
            {"n_samples": 10, "n_sites": 10, "block_size": 0},
            {"n_samples": 10, "n_sites": 10, "founders_per_block": 0},
            {"n_samples": 10, "n_sites": 10, "recombination_noise": 1.5},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(DatasetError):
            PopulationModel(**kwargs)


class TestGeneratePopulation:
    def test_shape_and_dtype(self):
        ds = generate_population(PopulationModel(50, 80), rng=0)
        assert ds.matrix.shape == (50, 80)
        assert ds.matrix.dtype == np.uint8

    def test_deterministic_with_seed(self):
        model = PopulationModel(30, 40)
        a = generate_population(model, rng=42).matrix
        b = generate_population(model, rng=42).matrix
        assert (a == b).all()

    def test_different_seeds_differ(self):
        model = PopulationModel(30, 40)
        a = generate_population(model, rng=1).matrix
        b = generate_population(model, rng=2).matrix
        assert (a != b).any()

    def test_maf_respects_bounds(self):
        model = PopulationModel(4000, 100, maf_floor=0.05)
        ds = generate_population(model, rng=3)
        maf = ds.matrix.mean(axis=0)
        # Sampled frequencies should stay near the [floor, 0.5] band;
        # allow sampling noise around the edges.
        assert maf.max() < 0.65
        assert maf.min() > 0.0

    def test_rare_variant_heavy_spectrum(self):
        ds = generate_population(PopulationModel(2000, 500), rng=4)
        maf = ds.matrix.mean(axis=0)
        # Beta(0.8, 4) puts most sites below 0.25.
        assert (maf < 0.25).mean() > 0.5

    def test_blocks_create_ld(self):
        # Common-variant spectrum so founder haplotypes actually differ
        # within blocks (rare variants leave blocks monomorphic).
        blocked = generate_population(
            PopulationModel(
                400, 64, block_size=16, founders_per_block=2,
                recombination_noise=0.0, maf_alpha=5.0, maf_beta=5.0,
            ),
            rng=5,
        )
        free = generate_population(
            PopulationModel(400, 64, maf_alpha=5.0, maf_beta=5.0), rng=5
        )

        def mean_adjacent_r2(matrix):
            r2 = ld_r_squared(matrix.T)
            return np.mean([r2[i, i + 1] for i in range(0, 60, 2)])

        assert mean_adjacent_r2(blocked.matrix) > mean_adjacent_r2(free.matrix) + 0.1

    def test_accepts_generator_instance(self):
        rng = np.random.default_rng(0)
        ds = generate_population(PopulationModel(5, 5), rng=rng)
        assert ds.n_samples == 5

    def test_block_not_dividing_sites(self):
        ds = generate_population(
            PopulationModel(10, 25, block_size=10), rng=6
        )
        assert ds.matrix.shape == (10, 25)


class TestGenerateUniformMatrix:
    def test_density(self):
        m = generate_uniform_matrix(500, 500, density=0.2, rng=0)
        assert m.mean() == pytest.approx(0.2, abs=0.02)

    def test_extreme_densities(self):
        assert generate_uniform_matrix(10, 10, 0.0, rng=0).sum() == 0
        assert generate_uniform_matrix(10, 10, 1.0, rng=0).sum() == 100

    def test_zero_rows(self):
        assert generate_uniform_matrix(0, 5, rng=0).shape == (0, 5)

    def test_invalid_density_rejected(self):
        with pytest.raises(DatasetError):
            generate_uniform_matrix(5, 5, density=1.5)

    def test_negative_shape_rejected(self):
        with pytest.raises(DatasetError):
            generate_uniform_matrix(-1, 5)
