"""Cross-cutting integration tests: the extension layers working together."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.config import Algorithm
from repro.core.streaming import StreamingIdentitySearch
from repro.multigpu import QUAD_GTX980, run_multi_gpu
from repro.snp.forensic import make_mixture
from repro.snp.io import save_database_npz, save_dataset_npz
from repro.snp.kinship import ibs_matrix
from repro.snp.panels import FORENSIC_EXTENDED, GWAS_ARRAY, PanelSpec
from repro.snp.pedigree import Pedigree
from repro.snp.popstats import gene_diversity, hudson_fst
from repro.snp.significance import random_match_probability
from repro.snp.vcf import read_vcf, write_vcf
from repro.sparse.auto import auto_comparison
from repro.snp.dataset import SNPDataset
from repro.snp.stats import ld_counts_naive


class TestForensicCaseworkPipeline:
    """Panel -> database -> streaming search -> statistics, end to end."""

    @pytest.fixture(scope="class")
    def case(self):
        panel = PanelSpec(
            name="case-panel", description="test", n_sites=256,
            maf_alpha=3.0, maf_beta=3.0,
        )
        db = panel.database(2000, rng=0)
        rng = np.random.default_rng(1)
        suspect = db.profiles[777].copy()
        flips = rng.choice(256, size=3, replace=False)
        suspect[flips] ^= 1  # degraded sample
        return panel, db, suspect

    def test_streaming_finds_degraded_suspect(self, case):
        _, db, suspect = case
        stream = StreamingIdentitySearch(suspect[None, :], k=3, device="GTX 980")
        for start in range(0, db.n_profiles, 512):
            stream.add_batch(db.profiles[start : start + 512])
        best = stream.best(0)
        assert best.database_index == 777
        assert best.distance == 3

    def test_match_is_statistically_meaningful(self, case):
        _, db, _ = case
        # The hit at distance 3 must be far below random-match levels.
        rmp = random_match_probability(db.frequencies, max_distance=3)
        expected_false_hits = rmp * db.n_profiles
        assert expected_false_hits < 1e-6

    def test_mixture_screen_on_same_panel(self, case):
        _, db, _ = case
        from repro.core.mixture import mixture_analysis

        mixture = make_mixture(db.profiles[[10, 20, 30]])[None, :]
        result = mixture_analysis(db.profiles[:100], mixture, device="Vega 64")
        flagged = {r for r, _ in result.consistent_contributors(0)}
        assert {10, 20, 30} <= flagged

    def test_family_in_database_flagged_by_kinship(self, case):
        _, db, _ = case
        ped = Pedigree(frequencies=db.frequencies, rng=5)
        mom = ped.add_founder()
        dad = ped.add_founder()
        kid = ped.add_child(mom, dad)
        cohort = np.vstack([db.profiles[:30], ped.matrix()])
        result = ibs_matrix(cohort, device="Titan V")
        pairs = {frozenset(p[:2]) for p in result.related_pairs(min_excess=0.04)}
        assert frozenset({30 + mom, 30 + kid}) in pairs


class TestPopulationStudyPipeline:
    """Panels -> cohorts -> LD + popstats + sparse auto-selection."""

    def test_gwas_panel_workflow(self):
        panel = PanelSpec(
            name="mini-gwas", description="test", n_sites=400,
            maf_alpha=GWAS_ARRAY.maf_alpha, maf_beta=GWAS_ARRAY.maf_beta,
            block_size=20, founders_per_block=4,
        )
        pooled = panel.population(300, rng=2)
        # Two cohorts sampled from one population: near-zero Fst.
        cohort_a = pooled.matrix[:150]
        cohort_b = pooled.matrix[150:]
        fst_same, _ = hudson_fst(cohort_a, cohort_b)
        assert abs(fst_same) < 0.05
        assert gene_diversity(cohort_a) > 0.05
        # Independently generated populations (their own frequency
        # draws and founder haplotypes) differentiate strongly.
        other = panel.population(150, rng=3)
        fst_diff, _ = hudson_fst(cohort_a, other.matrix)
        assert fst_diff > fst_same + 0.05

    def test_sparse_auto_on_rare_panel_matches_framework(self):
        panel = PanelSpec(
            name="rare", description="test", n_sites=600,
            maf_alpha=0.3, maf_beta=12.0,
        )
        ds = panel.population(40, rng=4)
        table, choice = auto_comparison(ds.matrix, op="and")
        assert choice.representation == "sparse"
        assert (table == ld_counts_naive(ds.matrix)).all()

    def test_multigpu_agrees_with_streaming_totals(self):
        panel = FORENSIC_EXTENDED
        db = panel.database(3000, rng=6)
        queries = db.profiles[:4]
        table, _ = run_multi_gpu(
            QUAD_GTX980, Algorithm.FASTID_IDENTITY, queries, db.profiles
        )
        stream = StreamingIdentitySearch(queries, k=1, device="GTX 980")
        stream.add_batch(db.profiles)
        for qi in range(4):
            assert stream.best(qi).distance == int(table[qi].min())


class TestFileFormatInterop:
    """VCF -> dataset -> CLI analysis over the same data."""

    def test_vcf_to_cli_ld(self, tmp_path, capsys):
        from repro.snp.generator import PopulationModel, generate_population

        ds = generate_population(PopulationModel(20, 30), rng=7)
        vcf_path = tmp_path / "cohort.vcf"
        write_vcf(vcf_path, ds)
        loaded = read_vcf(vcf_path)
        npz_path = tmp_path / "cohort.npz"
        save_dataset_npz(npz_path, loaded)
        assert cli_main(["ld", "--input", str(npz_path), "--device", "GTX 980"]) == 0
        assert "mean r2" in capsys.readouterr().out

    def test_vcf_database_identity_search(self, tmp_path, capsys):
        from repro.snp.forensic import generate_database

        db = generate_database(60, 64, rng=8)
        db_path = tmp_path / "db.npz"
        save_database_npz(db_path, db)
        q_path = tmp_path / "q.npz"
        save_dataset_npz(q_path, SNPDataset(matrix=db.profiles[:2].copy()))
        assert cli_main(
            ["identity", "--queries", str(q_path), "--database", str(db_path)]
        ) == 0
        assert "matches" in capsys.readouterr().out
