"""Tests for repro.multigpu: the future-work multi-GPU extension."""

import numpy as np
import pytest

from repro.core.config import Algorithm
from repro.core.framework import SNPComparisonFramework
from repro.errors import ModelError
from repro.gpu.arch import GTX_980, TITAN_V
from repro.multigpu.executor import (
    estimate_multi_gpu,
    run_multi_gpu,
    scaling_series,
)
from repro.multigpu.interconnect import (
    NVLINK_DEDICATED,
    PCIE_SHARED,
    InterconnectModel,
)
from repro.multigpu.partition import partition_database
from repro.multigpu.system import DGX2_LIKE, QUAD_GTX980, MultiGPUSystem
from repro.snp.stats import identity_distances_naive


class TestInterconnect:
    def test_shared_link_divides_bandwidth(self):
        assert PCIE_SHARED.effective_host_bandwidth(4) == pytest.approx(3.0)

    def test_dedicated_link_holds_bandwidth(self):
        assert NVLINK_DEDICATED.effective_host_bandwidth(16) == pytest.approx(12.0)

    def test_zero_devices_rejected(self):
        with pytest.raises(ModelError):
            PCIE_SHARED.effective_host_bandwidth(0)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ModelError):
            InterconnectModel("x", True, 0.0, 1.0)


class TestSystem:
    def test_presets(self):
        assert DGX2_LIKE.n_devices == 16
        assert DGX2_LIKE.device is TITAN_V
        assert not DGX2_LIKE.interconnect.shared_host_link
        assert QUAD_GTX980.n_devices == 4
        assert QUAD_GTX980.interconnect.shared_host_link

    def test_collective_memory(self):
        # "The collective memory on the GPUs would facilitate the
        # storage of even larger datasets."
        assert DGX2_LIKE.total_global_memory_bytes == 16 * TITAN_V.global_memory_bytes
        assert DGX2_LIKE.total_cores == 16 * 80

    def test_subsystem(self):
        sub = DGX2_LIKE.subsystem(4)
        assert sub.n_devices == 4
        assert sub.device is TITAN_V
        with pytest.raises(ModelError):
            DGX2_LIKE.subsystem(17)

    def test_invalid_count_rejected(self):
        with pytest.raises(ModelError):
            MultiGPUSystem("x", GTX_980, 0, PCIE_SHARED)


class TestPartition:
    def test_covers_rows_disjointly(self):
        slices = partition_database(1000, 3, align=64)
        covered = []
        for s in slices:
            covered.extend(range(s.row_start, s.row_stop))
        assert covered == list(range(1000))

    def test_alignment(self):
        slices = partition_database(1000, 3, align=64)
        for s in slices[:-1]:
            assert s.row_stop % 64 == 0 or s.row_stop == 1000

    def test_empty_slices_when_scarce(self):
        slices = partition_database(64, 4, align=64)
        assert slices[0].n_rows == 64
        assert all(s.is_empty for s in slices[1:])

    def test_zero_rows(self):
        slices = partition_database(0, 2)
        assert all(s.is_empty for s in slices)

    def test_validation(self):
        with pytest.raises(ModelError):
            partition_database(10, 0)
        with pytest.raises(ModelError):
            partition_database(-1, 2)
        with pytest.raises(ModelError):
            partition_database(10, 2, align=0)


class TestFunctionalRun:
    @pytest.fixture(scope="class")
    def workload(self):
        rng = np.random.default_rng(0)
        a = (rng.random((10, 256)) < 0.4).astype(np.uint8)
        b = (rng.random((5000, 256)) < 0.5).astype(np.uint8)
        return a, b

    def test_bit_exact_with_single_device(self, workload):
        a, b = workload
        table, report = run_multi_gpu(QUAD_GTX980, Algorithm.FASTID_IDENTITY, a, b)
        assert (table == identity_distances_naive(a, b)).all()
        single = SNPComparisonFramework(GTX_980, Algorithm.FASTID_IDENTITY)
        single_table, _ = single.run(a, b)
        assert (table == single_table).all()

    def test_devices_used(self, workload):
        a, b = workload
        _, report = run_multi_gpu(QUAD_GTX980, Algorithm.FASTID_IDENTITY, a, b)
        assert report.n_devices_used == 4
        assert len(report.per_device) == 4
        assert report.makespan_s == max(e.end_to_end_s for e in report.per_device)

    def test_small_database_uses_fewer_devices(self):
        rng = np.random.default_rng(1)
        a = (rng.random((4, 128)) < 0.5).astype(np.uint8)
        b = (rng.random((100, 128)) < 0.5).astype(np.uint8)
        table, report = run_multi_gpu(QUAD_GTX980, Algorithm.LD, a, b)
        # 100 rows < one n_r-aligned unit per device: one device owns all.
        assert report.n_devices_used == 1
        assert (table == SNPComparisonFramework(GTX_980, Algorithm.LD).run(a, b)[0]).all()

    def test_empty_database_rejected(self):
        a = np.zeros((2, 64), dtype=np.uint8)
        with pytest.raises(ModelError):
            run_multi_gpu(QUAD_GTX980, Algorithm.LD, a, np.zeros((0, 64), dtype=np.uint8))


class TestEstimation:
    def test_ndis_scale_on_dgx2(self):
        rep = estimate_multi_gpu(
            DGX2_LIKE, Algorithm.FASTID_IDENTITY, 32, 20 * 1024 * 1024, 1024
        )
        assert rep.n_devices_used == 16
        # Dedicated links: the node beats one Titan V decisively.
        single = estimate_multi_gpu(
            DGX2_LIKE.subsystem(1), Algorithm.FASTID_IDENTITY,
            32, 20 * 1024 * 1024, 1024,
        )
        assert rep.speedup_over(single.makespan_s) > 2.0

    def test_shared_pcie_limits_transfer_bound_scaling(self):
        # FastID is transfer-bound: behind one PCIe switch, extra
        # devices mostly re-slice the same link.
        kwargs = dict(m=32, n=4 * 1024 * 1024, k_bits=1024)
        single = estimate_multi_gpu(
            QUAD_GTX980.subsystem(1), Algorithm.FASTID_IDENTITY, **kwargs
        )
        quad = estimate_multi_gpu(QUAD_GTX980, Algorithm.FASTID_IDENTITY, **kwargs)
        speedup = quad.speedup_over(single.makespan_s)
        assert speedup < 2.0  # nowhere near 4x

    def test_compute_bound_ld_scales_on_dgx2(self):
        kwargs = dict(m=8192, n=65536, k_bits=25_600)
        series = scaling_series(DGX2_LIKE, Algorithm.LD, **kwargs)
        by_devices = {p["devices"]: p for p in series}
        assert by_devices[1]["speedup"] == pytest.approx(1.0)
        # End-to-end speedup is Amdahl-bound by the per-node OpenCL
        # initialization (a serial ~0.3 s); it still beats 2x ...
        assert by_devices[16]["speedup"] > 2.0
        speedups = [p["speedup"] for p in series]
        assert speedups == sorted(speedups)
        # ... while the parallel portion (init excluded) scales near-
        # linearly across the 16 devices.
        init = DGX2_LIKE.device.memory.init_overhead_s
        work_1 = by_devices[1]["makespan_s"] - init
        work_16 = by_devices[16]["makespan_s"] - init
        assert work_1 / work_16 > 10.0

    def test_parallel_efficiency_bounded(self):
        series = scaling_series(
            DGX2_LIKE, Algorithm.LD, 4096, 65536, 10_000
        )
        for p in series:
            assert 0 < p["efficiency"] <= 1.3  # DVFS can nudge above 1

    def test_estimate_empty_rejected(self):
        with pytest.raises(ModelError):
            estimate_multi_gpu(QUAD_GTX980, Algorithm.LD, 10, 0, 100)
