"""Tests for repro.core.streaming and repro.snp.popstats."""

import numpy as np
import pytest

from repro.core.identity import identity_search
from repro.core.streaming import Match, StreamingIdentitySearch
from repro.errors import DatasetError
from repro.snp.forensic import generate_database, generate_queries
from repro.snp.popstats import (
    expected_heterozygosity,
    gene_diversity,
    hudson_fst,
    site_frequency_spectrum,
)


class TestStreamingSearch:
    @pytest.fixture(scope="class")
    def workload(self):
        db = generate_database(1200, 192, rng=0)
        queries, members = generate_queries(db, 3, 2, rng=1, error_rate=0.01)
        return db, queries, members

    def test_matches_equal_full_materialization(self, workload):
        db, queries, _ = workload
        k = 7
        stream = StreamingIdentitySearch(queries, k=k, device="GTX 980")
        for start in range(0, db.n_profiles, 250):
            stream.add_batch(db.profiles[start : start + 250])

        full = identity_search(queries, db, device="GTX 980").distances
        for qi in range(queries.shape[0]):
            # Deterministic reference top-k: distance then index.
            order = np.lexsort((np.arange(db.n_profiles), full[qi]))[:k]
            expected = [Match(int(full[qi, i]), int(i)) for i in order]
            assert stream.matches(qi) == expected

    def test_batch_boundaries_do_not_matter(self, workload):
        db, queries, _ = workload

        def run(batch_size):
            s = StreamingIdentitySearch(queries, k=5, device="Titan V")
            for start in range(0, db.n_profiles, batch_size):
                s.add_batch(db.profiles[start : start + batch_size])
            return s.all_matches()

        assert run(100) == run(777) == run(db.n_profiles)

    def test_members_found_as_best(self, workload):
        db, queries, members = workload
        stream = StreamingIdentitySearch(queries, k=3)
        stream.add_batch(db.profiles)
        for qi in range(3):
            assert stream.best(qi).database_index == int(members[qi])

    def test_bookkeeping(self, workload):
        db, queries, _ = workload
        stream = StreamingIdentitySearch(queries, k=2)
        stream.add_batch(db.profiles[:500])
        stream.add_batch(db.profiles[500:])
        assert stream.rows_seen == db.n_profiles
        assert stream.batches_seen == 2
        assert stream.simulated_seconds > 0

    def test_fewer_rows_than_k(self, workload):
        _, queries, _ = workload
        stream = StreamingIdentitySearch(queries, k=50)
        stream.add_batch(np.zeros((4, queries.shape[1]), dtype=np.uint8))
        assert len(stream.matches(0)) == 4

    def test_empty_batch_ignored(self, workload):
        _, queries, _ = workload
        stream = StreamingIdentitySearch(queries, k=2)
        stream.add_batch(np.zeros((0, queries.shape[1]), dtype=np.uint8))
        assert stream.rows_seen == 0

    def test_validation(self, workload):
        _, queries, _ = workload
        with pytest.raises(DatasetError):
            StreamingIdentitySearch(queries, k=0)
        with pytest.raises(DatasetError):
            StreamingIdentitySearch(np.zeros((0, 4), dtype=np.uint8))
        stream = StreamingIdentitySearch(queries, k=2)
        with pytest.raises(DatasetError):
            stream.add_batch(np.zeros((3, 7), dtype=np.uint8))
        with pytest.raises(DatasetError):
            stream.matches(99)
        with pytest.raises(DatasetError):
            stream.best(0)  # nothing seen yet

    def test_best_before_any_rows_names_the_cause(self, workload):
        _, queries, _ = workload
        stream = StreamingIdentitySearch(queries, k=2)
        with pytest.raises(DatasetError, match=r"rows_seen=0"):
            stream.best(0)

    def test_k_above_documented_maximum_rejected(self, workload):
        _, queries, _ = workload
        with pytest.raises(DatasetError, match="exceeds the supported maximum"):
            StreamingIdentitySearch(
                queries, k=StreamingIdentitySearch.MAX_K + 1
            )
        # The bound itself is fine.
        StreamingIdentitySearch(queries, k=StreamingIdentitySearch.MAX_K)

    def test_prefilter_fallback_surfaced_via_counter(self, workload):
        from repro.observability.tracer import Tracer, set_tracer

        db, queries, _ = workload
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            # k larger than every batch keeps the heaps unfilled, so
            # each batch degrades to the unfiltered fold -- counted,
            # not silent.
            stream = StreamingIdentitySearch(queries, k=200)
            stream.add_batch(db.profiles[:50])
            stream.add_batch(db.profiles[50:100])
            unfiltered = tracer.counters.snapshot()["stream.prefilter_fallbacks"]
            assert unfiltered == 2 * queries.shape[0]
            # Once the heaps are full, the pre-filter engages again.
            before = unfiltered
            stream2 = StreamingIdentitySearch(queries, k=3)
            stream2.add_batch(db.profiles[:50])
            stream2.add_batch(db.profiles[50:100])
            after = tracer.counters.snapshot()["stream.prefilter_fallbacks"]
            # Only the first (heap-filling) batch falls back.
            assert after - before == queries.shape[0]
        finally:
            set_tracer(previous)


class TestPopstats:
    def test_expected_heterozygosity_values(self):
        m = np.array([[0, 1, 1], [0, 1, 0], [0, 1, 1], [0, 1, 0]], dtype=np.uint8)
        h = expected_heterozygosity(m)
        assert h.tolist() == [0.0, 0.0, 0.5]

    def test_gene_diversity(self):
        m = np.array([[0, 1], [1, 0]], dtype=np.uint8)
        assert gene_diversity(m) == pytest.approx(0.5)

    def test_fst_identical_cohorts_near_zero(self):
        rng = np.random.default_rng(0)
        pool = (rng.random((400, 300)) < 0.3).astype(np.uint8)
        fst, per_site = hudson_fst(pool[:200], pool[200:])
        assert abs(fst) < 0.01

    def test_fst_divergent_cohorts_positive(self):
        rng = np.random.default_rng(1)
        a = (rng.random((200, 300)) < 0.1).astype(np.uint8)
        b = (rng.random((200, 300)) < 0.6).astype(np.uint8)
        fst, _ = hudson_fst(a, b)
        assert fst > 0.3

    def test_fst_fixed_difference_is_one(self):
        a = np.zeros((10, 5), dtype=np.uint8)
        b = np.ones((10, 5), dtype=np.uint8)
        fst, per_site = hudson_fst(a, b)
        assert fst == pytest.approx(1.0)
        assert np.allclose(per_site, 1.0)

    def test_fst_validation(self):
        with pytest.raises(DatasetError):
            hudson_fst(np.zeros((1, 4), dtype=np.uint8), np.zeros((5, 4), dtype=np.uint8))
        with pytest.raises(DatasetError):
            hudson_fst(np.zeros((3, 4), dtype=np.uint8), np.zeros((3, 5), dtype=np.uint8))
        with pytest.raises(DatasetError):
            hudson_fst(np.zeros((3, 4), dtype=np.uint8), np.zeros((3, 4), dtype=np.uint8))

    def test_sfs_excludes_monomorphic_and_folds(self):
        m = np.array(
            [[0, 1, 1, 1], [0, 1, 1, 0], [0, 1, 0, 0], [0, 1, 0, 0]],
            dtype=np.uint8,
        )
        counts, edges = site_frequency_spectrum(m, n_bins=2)
        # Site 0 monomorphic (dropped); site 1 p=1 folds to 0 (dropped);
        # sites 2, 3 have p=0.5 and 0.25.
        assert counts.sum() == 2
        assert edges[0] == 0.0 and edges[-1] == 0.5

    def test_sfs_matches_generator_spectrum(self):
        from repro.snp.generator import PopulationModel, generate_population

        ds = generate_population(
            PopulationModel(500, 2000, maf_alpha=0.8, maf_beta=4.0), rng=2
        )
        counts, _ = site_frequency_spectrum(ds.matrix, n_bins=5)
        # Rare-variant-heavy: the lowest-frequency bin dominates.
        assert counts[0] == counts.max()

    def test_validation(self):
        with pytest.raises(DatasetError):
            expected_heterozygosity(np.zeros((0, 4), dtype=np.uint8))
        with pytest.raises(DatasetError):
            site_frequency_spectrum(np.zeros((2, 2), dtype=np.uint8), n_bins=0)
        with pytest.raises(DatasetError):
            gene_diversity(np.array([[2]]))
