"""Tests for repro.blis.packing: A/B panel pack buffers."""

import numpy as np
import pytest

from repro.blis.packing import (
    pack_a_panel,
    pack_b_panel,
    unpack_a_panel,
    unpack_b_panel,
)
from repro.errors import PackingError


def random_words(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**32, size=shape, dtype=np.uint32)


class TestPackA:
    def test_roundtrip_exact(self):
        panel = random_words((16, 10))
        packed = pack_a_panel(panel, m_r=4)
        assert packed.shape == (4, 10, 4)
        assert (unpack_a_panel(packed, 16) == panel).all()

    def test_roundtrip_with_padding(self):
        panel = random_words((10, 6))
        packed = pack_a_panel(panel, m_r=4)
        assert packed.shape == (3, 6, 4)
        assert (unpack_a_panel(packed, 10) == panel).all()

    def test_padding_is_zero(self):
        panel = random_words((5, 3))
        packed = pack_a_panel(panel, m_r=4)
        # Second micro-panel has rows 4 (live) and 5..7 (padding).
        assert (packed[1, :, 1:] == 0).all()

    def test_micro_panel_layout(self):
        # Element (row r, col k) lands at packed[r // m_r, k, r % m_r].
        panel = np.arange(8, dtype=np.uint32).reshape(4, 2)
        packed = pack_a_panel(panel, m_r=2)
        assert packed[0, 0, 0] == panel[0, 0]
        assert packed[0, 0, 1] == panel[1, 0]
        assert packed[1, 1, 0] == panel[2, 1]

    def test_empty_panel(self):
        packed = pack_a_panel(np.zeros((0, 5), dtype=np.uint32), m_r=4)
        assert packed.shape == (0, 5, 4)

    def test_invalid_inputs(self):
        with pytest.raises(PackingError):
            pack_a_panel(np.zeros(5, dtype=np.uint32), m_r=4)
        with pytest.raises(PackingError):
            pack_a_panel(np.zeros((4, 4), dtype=np.float64), m_r=4)
        with pytest.raises(PackingError):
            pack_a_panel(random_words((4, 4)), m_r=0)

    def test_unpack_bad_m(self):
        packed = pack_a_panel(random_words((8, 4)), m_r=4)
        with pytest.raises(PackingError):
            unpack_a_panel(packed, 9)


class TestPackB:
    def test_roundtrip_exact(self):
        panel = random_words((10, 32), seed=1)
        packed = pack_b_panel(panel, n_r=8)
        assert packed.shape == (4, 10, 8)
        assert (unpack_b_panel(packed, 32) == panel).all()

    def test_roundtrip_with_padding(self):
        panel = random_words((7, 11), seed=2)
        packed = pack_b_panel(panel, n_r=4)
        assert packed.shape == (3, 7, 4)
        assert (unpack_b_panel(packed, 11) == panel).all()

    def test_padding_is_zero(self):
        panel = random_words((3, 5), seed=3)
        packed = pack_b_panel(panel, n_r=4)
        assert (packed[1, :, 1:] == 0).all()

    def test_micro_panel_layout(self):
        # Element (k, col c) lands at packed[c // n_r, k, c % n_r].
        panel = np.arange(6, dtype=np.uint32).reshape(2, 3)
        packed = pack_b_panel(panel, n_r=2)
        assert packed[0, 0, 0] == panel[0, 0]
        assert packed[0, 1, 1] == panel[1, 1]
        assert packed[1, 0, 0] == panel[0, 2]

    def test_invalid_inputs(self):
        with pytest.raises(PackingError):
            pack_b_panel(np.zeros((2, 2, 2), dtype=np.uint32), n_r=2)
        with pytest.raises(PackingError):
            pack_b_panel(random_words((4, 4)), n_r=-1)

    def test_unpack_bad_n(self):
        packed = pack_b_panel(random_words((4, 8)), n_r=4)
        with pytest.raises(PackingError):
            unpack_b_panel(packed, 100)
