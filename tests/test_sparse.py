"""Tests for repro.sparse: the future-work sparse representation."""

import numpy as np
import pytest

from repro.blis.microkernel import ComparisonOp
from repro.errors import DatasetError, ModelError
from repro.snp.stats import (
    identity_distances_naive,
    ld_counts_naive,
    mixture_scores_naive,
)
from repro.sparse.auto import auto_comparison, choose_representation
from repro.sparse.cost import SparseCostModel, density_crossover
from repro.sparse.kernels import (
    intersection_counts,
    sparse_comparison,
    sparse_dense_comparison,
)
from repro.sparse.matrix import SparseSNPMatrix


def random_bits(shape, density, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random(shape) < density).astype(np.uint8)


class TestSparseMatrix:
    def test_from_dense_roundtrip(self):
        bits = random_bits((11, 73), 0.2, 1)
        sp = SparseSNPMatrix.from_dense(bits)
        assert (sp.to_dense() == bits).all()
        assert sp.nnz == bits.sum()
        assert sp.n_rows == 11
        assert sp.n_sites == 73

    def test_rows_sorted(self):
        bits = random_bits((5, 40), 0.5, 2)
        sp = SparseSNPMatrix.from_dense(bits)
        for r in range(5):
            row = sp.row(r)
            assert (np.diff(row) > 0).all() or row.size <= 1

    def test_density(self):
        bits = np.zeros((4, 10), dtype=np.uint8)
        bits[0, :5] = 1
        sp = SparseSNPMatrix.from_dense(bits)
        assert sp.density == pytest.approx(5 / 40)

    def test_empty_matrix(self):
        sp = SparseSNPMatrix.from_dense(np.zeros((3, 8), dtype=np.uint8))
        assert sp.nnz == 0
        assert (sp.to_dense() == 0).all()

    def test_subset_rows(self):
        bits = random_bits((6, 20), 0.3, 3)
        sp = SparseSNPMatrix.from_dense(bits)
        sub = sp.subset_rows([4, 0])
        assert (sub.to_dense() == bits[[4, 0]]).all()

    def test_row_out_of_range(self):
        sp = SparseSNPMatrix.from_dense(np.zeros((2, 4), dtype=np.uint8))
        with pytest.raises(DatasetError):
            sp.row(2)

    def test_invalid_construction(self):
        with pytest.raises(DatasetError):
            SparseSNPMatrix(
                indices=np.array([5]), indptr=np.array([0, 1]), n_sites=3
            )
        with pytest.raises(DatasetError):
            SparseSNPMatrix(
                indices=np.array([1]), indptr=np.array([0, 2]), n_sites=4
            )
        with pytest.raises(DatasetError):
            SparseSNPMatrix(
                indices=np.array([2, 1]), indptr=np.array([0, 2]), n_sites=4
            )

    def test_non_binary_rejected(self):
        with pytest.raises(DatasetError):
            SparseSNPMatrix.from_dense(np.array([[0, 2]]))


class TestSparseKernels:
    @pytest.fixture(scope="class")
    def operands(self):
        a = random_bits((9, 120), 0.15, 4)
        b = random_bits((13, 120), 0.25, 5)
        return a, b, SparseSNPMatrix.from_dense(a), SparseSNPMatrix.from_dense(b)

    def test_intersection_counts(self, operands):
        a, b, sa, sb = operands
        expected = ld_counts_naive(a, b)
        assert (intersection_counts(sa, sb) == expected).all()

    def test_and_kernel(self, operands):
        a, b, sa, sb = operands
        assert (sparse_comparison(sa, sb, ComparisonOp.AND) == ld_counts_naive(a, b)).all()

    def test_xor_kernel(self, operands):
        a, b, sa, sb = operands
        assert (
            sparse_comparison(sa, sb, ComparisonOp.XOR)
            == identity_distances_naive(a, b)
        ).all()

    def test_andnot_kernel(self, operands):
        a, b, sa, sb = operands
        assert (
            sparse_comparison(sa, sb, ComparisonOp.ANDNOT)
            == mixture_scores_naive(a, b)
        ).all()

    def test_self_comparison(self, operands):
        a, _, sa, _ = operands
        assert (sparse_comparison(sa) == ld_counts_naive(a)).all()

    def test_empty_rows(self):
        a = np.zeros((3, 16), dtype=np.uint8)
        a[1, [2, 5]] = 1
        sa = SparseSNPMatrix.from_dense(a)
        assert (sparse_comparison(sa) == ld_counts_naive(a)).all()

    def test_site_mismatch_rejected(self, operands):
        _, _, sa, _ = operands
        other = SparseSNPMatrix.from_dense(np.zeros((2, 7), dtype=np.uint8))
        with pytest.raises(DatasetError):
            sparse_comparison(sa, other)

    def test_sparse_dense_path(self, operands):
        a, b, sa, _ = operands
        out = sparse_dense_comparison(sa, b, ComparisonOp.XOR)
        assert (out == identity_distances_naive(a, b)).all()
        out_and = sparse_dense_comparison(sa, b, ComparisonOp.AND)
        assert (out_and == ld_counts_naive(a, b)).all()

    def test_sparse_dense_validation(self, operands):
        _, _, sa, _ = operands
        with pytest.raises(DatasetError):
            sparse_dense_comparison(sa, np.zeros((2, 99), dtype=np.uint8))


class TestCostModel:
    def test_dense_cost_density_independent(self):
        m = SparseCostModel()
        assert m.dense_ops(10, 10, 320) == 10 * 10 * 10

    def test_sparse_cost_quadratic_in_density(self):
        m = SparseCostModel(pair_overhead=0.0)
        low = m.sparse_ops(10, 10, 1000, 0.01)
        high = m.sparse_ops(10, 10, 1000, 0.02)
        assert high == pytest.approx(4 * low)

    def test_crossover_in_rare_variant_regime(self):
        # With default constants the crossover sits at a few percent
        # density -- the rare-variant panels the paper's remark targets.
        d_star = density_crossover()
        assert 0.01 < d_star < 0.15
        m = SparseCostModel()
        assert m.sparse_wins(100, 100, 10_000, d_star * 0.5)
        assert not m.sparse_wins(100, 100, 10_000, d_star * 2.0)

    def test_crossover_shrinks_with_sparse_cost(self):
        cheap = density_crossover(SparseCostModel(sparse_op_cost=4.0))
        costly = density_crossover(SparseCostModel(sparse_op_cost=16.0))
        assert costly < cheap

    def test_overhead_can_kill_sparse(self):
        # Tiny k: the per-pair overhead exceeds the dense cost outright.
        model = SparseCostModel(pair_overhead=100.0)
        assert density_crossover(model, k_bits=32) == 0.0

    def test_validation(self):
        with pytest.raises(ModelError):
            SparseCostModel(sparse_op_cost=0.0)
        with pytest.raises(ModelError):
            SparseCostModel().sparse_ops(1, 1, 10, 1.5)
        with pytest.raises(ModelError):
            SparseCostModel().dense_ops(0, 1, 10)


class TestAutoSelection:
    def test_rare_variants_choose_sparse(self):
        a = random_bits((20, 2000), 0.01, 6)
        choice = choose_representation(a)
        assert choice.representation == "sparse"
        assert choice.predicted_speedup > 1.0

    def test_common_variants_choose_dense(self):
        a = random_bits((20, 2000), 0.4, 7)
        choice = choose_representation(a)
        assert choice.representation == "dense"

    @pytest.mark.parametrize("density", [0.01, 0.4])
    @pytest.mark.parametrize(
        "op", [ComparisonOp.AND, ComparisonOp.XOR, ComparisonOp.ANDNOT]
    )
    def test_auto_comparison_bit_exact(self, density, op):
        a = random_bits((8, 300), density, 8)
        b = random_bits((6, 300), density, 9)
        table, choice = auto_comparison(a, b, op)
        oracle = {
            ComparisonOp.AND: ld_counts_naive,
            ComparisonOp.XOR: identity_distances_naive,
            ComparisonOp.ANDNOT: mixture_scores_naive,
        }[op](a, b)
        assert (table == oracle).all()
        assert choice.representation in ("sparse", "dense")

    def test_auto_self_comparison(self):
        a = random_bits((10, 400), 0.02, 10)
        table, choice = auto_comparison(a)
        assert (table == ld_counts_naive(a)).all()
        assert choice.representation == "sparse"

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            choose_representation(
                np.zeros((2, 5), dtype=np.uint8), np.zeros((2, 6), dtype=np.uint8)
            )
