"""Tests for repro.snp.forensic: databases, queries, mixtures."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.snp.forensic import (
    ForensicDatabase,
    generate_database,
    generate_queries,
    make_mixture,
    perturb_profile,
)


class TestForensicDatabase:
    def test_construction(self):
        db = generate_database(100, 64, rng=0)
        assert db.n_profiles == 100
        assert db.n_sites == 64
        assert db.frequencies.shape == (64,)

    def test_frequency_shape_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            ForensicDatabase(
                profiles=np.zeros((3, 4), dtype=np.uint8),
                frequencies=np.zeros(5),
            )

    def test_non_2d_rejected(self):
        with pytest.raises(DatasetError):
            ForensicDatabase(profiles=np.zeros(4, dtype=np.uint8), frequencies=np.zeros(4))

    def test_invalid_shape_args_rejected(self):
        with pytest.raises(DatasetError):
            generate_database(0, 10)

    def test_common_variant_spectrum(self):
        db = generate_database(5000, 200, rng=1)
        observed = db.profiles.mean(axis=0)
        # Forensic panels use common variants: clamped to [0.05, 0.5].
        assert observed.mean() > 0.1


class TestGenerateQueries:
    def test_member_queries_match_database(self):
        db = generate_database(50, 128, rng=2)
        queries, members = generate_queries(db, 5, 0, rng=3)
        assert queries.shape == (5, 128)
        for i, row in enumerate(members):
            assert row >= 0
            assert (queries[i] == db.profiles[row]).all()

    def test_unrelated_marked_minus_one(self):
        db = generate_database(50, 128, rng=2)
        queries, members = generate_queries(db, 2, 3, rng=4)
        assert (members[:2] >= 0).all()
        assert (members[2:] == -1).all()

    def test_unrelated_rarely_exact_match(self):
        db = generate_database(200, 256, rng=5)
        queries, members = generate_queries(db, 0, 10, rng=6)
        diffs = (queries[:, None, :] != db.profiles[None, :, :]).sum(axis=2)
        assert diffs.min() > 0  # 256 sites: collision probability ~ 0

    def test_error_rate_perturbs(self):
        db = generate_database(20, 512, rng=7)
        q_clean, m = generate_queries(db, 3, 0, rng=8, error_rate=0.0)
        rng = np.random.default_rng(8)
        q_noisy, m2 = generate_queries(db, 3, 0, rng=9, error_rate=0.05)
        mismatches = (q_noisy != db.profiles[m2]).sum()
        assert 0 < mismatches < 3 * 512 * 0.15

    def test_too_many_members_rejected(self):
        db = generate_database(5, 16, rng=0)
        with pytest.raises(DatasetError):
            generate_queries(db, 6, 0)

    def test_negative_counts_rejected(self):
        db = generate_database(5, 16, rng=0)
        with pytest.raises(DatasetError):
            generate_queries(db, -1, 0)


class TestPerturbProfile:
    def test_zero_rate_is_identity(self):
        rng = np.random.default_rng(0)
        p = np.array([0, 1, 1, 0], dtype=np.uint8)
        assert (perturb_profile(p, 0.0, rng) == p).all()

    def test_full_rate_flips_everything(self):
        rng = np.random.default_rng(0)
        p = np.array([0, 1, 1, 0], dtype=np.uint8)
        assert (perturb_profile(p, 1.0, rng) == 1 - p).all()

    def test_invalid_rate_rejected(self):
        with pytest.raises(DatasetError):
            perturb_profile(np.zeros(4, dtype=np.uint8), 1.5, np.random.default_rng(0))


class TestMakeMixture:
    def test_or_semantics(self):
        contribs = np.array([[1, 0, 0], [0, 1, 0]], dtype=np.uint8)
        assert (make_mixture(contribs) == [1, 1, 0]).all()

    def test_contributor_contained(self):
        rng = np.random.default_rng(1)
        contribs = (rng.random((4, 100)) < 0.3).astype(np.uint8)
        mix = make_mixture(contribs)
        for c in contribs:
            # Every minor allele of a contributor appears in the mixture.
            assert (np.bitwise_and(c, 1 - mix) == 0).all()

    def test_single_contributor_identity(self):
        p = np.array([[1, 0, 1]], dtype=np.uint8)
        assert (make_mixture(p) == p[0]).all()

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            make_mixture(np.zeros((0, 5), dtype=np.uint8))
