"""Tests for repro.gpu.coresim: the cycle-level core simulator."""

import pytest

from repro.errors import ModelError
from repro.gpu.arch import GTX_980, TITAN_V, VEGA_64
from repro.gpu.coresim import CoreSimulator, Program, ProgramInstruction
from repro.gpu.isa import Instruction


class TestProgram:
    def test_dependent_chain_structure(self):
        p = Program.dependent_chain(Instruction.POPC, length=4, iterations=2)
        assert p.dynamic_length == 8
        assert p.body[0].carried
        assert p.body[1].deps == (0,)

    def test_forward_dependency_rejected(self):
        with pytest.raises(ModelError):
            Program(body=(ProgramInstruction(op=Instruction.IADD, deps=(0,)),))

    def test_zero_iterations_rejected(self):
        with pytest.raises(ModelError):
            Program(body=(), iterations=0)

    def test_interleaved_streams_alternate(self):
        p = Program.interleaved_streams((Instruction.POPC, Instruction.IADD), 2)
        ops = [i.op for i in p.body]
        assert ops == [Instruction.POPC, Instruction.IADD] * 2


class TestLatencyMeasurement:
    def test_dependent_chain_exposes_latency_maxwell(self):
        # Maxwell POPC: L_fn = 6, issue gap = 32/8 = 4 -> chain = 6.
        sim = CoreSimulator(GTX_980)
        p = Program.dependent_chain(Instruction.POPC, length=16, iterations=4)
        r = sim.run(p, n_groups=1)
        assert r.cycles / p.dynamic_length == pytest.approx(6.0, rel=0.02)

    def test_issue_gap_dominates_on_volta_popc(self):
        # Volta POPC: gap = 32/4 = 8 > L_fn = 4 -> chain = 8.
        sim = CoreSimulator(TITAN_V)
        p = Program.dependent_chain(Instruction.POPC, length=16, iterations=4)
        r = sim.run(p, n_groups=1)
        assert r.cycles / p.dynamic_length == pytest.approx(8.0, rel=0.02)

    def test_alu_chain_latency(self):
        # Maxwell ALU: gap = 1, L_fn = 6 -> chain = 6.
        sim = CoreSimulator(GTX_980)
        p = Program.dependent_chain(Instruction.IADD, length=16, iterations=4)
        r = sim.run(p, n_groups=1)
        assert r.cycles / p.dynamic_length == pytest.approx(6.0, rel=0.02)


class TestThroughputMeasurement:
    @pytest.mark.parametrize(
        "arch,instr,expected_per_cluster",
        [
            (GTX_980, Instruction.POPC, 8),
            (GTX_980, Instruction.IADD, 32),
            (TITAN_V, Instruction.POPC, 4),
            (VEGA_64, Instruction.POPC, 16),
            (VEGA_64, Instruction.IADD, 16),
        ],
    )
    def test_saturated_throughput_recovers_units(
        self, arch, instr, expected_per_cluster
    ):
        sim = CoreSimulator(arch)
        groups = min(arch.n_grp_max, arch.n_cl * arch.l_fn)
        p = Program.independent_stream(instr, length=32, iterations=8)
        r = sim.run(p, n_groups=groups)
        word_ops_per_cycle = r.dynamic_instructions * arch.n_t / r.cycles
        assert word_ops_per_cycle / arch.n_cl == pytest.approx(
            expected_per_cluster, rel=0.05
        )

    def test_throughput_flat_up_to_cluster_count(self):
        # Paper: "execution time to remain nearly constant for
        # N_grp <= N_cl" -- each group lands on its own cluster.
        sim = CoreSimulator(GTX_980)
        p = Program.independent_stream(Instruction.POPC, length=32, iterations=4)
        times = [sim.run(p, n_groups=g).cycles for g in range(1, GTX_980.n_cl + 1)]
        assert max(times) - min(times) <= times[0] * 0.05

    def test_residency_limit_enforced(self):
        sim = CoreSimulator(VEGA_64)
        p = Program.independent_stream(Instruction.IADD, length=4)
        with pytest.raises(ModelError):
            sim.run(p, n_groups=VEGA_64.n_grp_max + 1)

    def test_zero_groups_rejected(self):
        sim = CoreSimulator(GTX_980)
        with pytest.raises(ModelError):
            sim.run(Program.independent_stream(Instruction.IADD, 4), n_groups=0)


class TestDualPipes:
    def test_popc_and_alu_overlap_on_nvidia(self):
        # Separate pipes: interleaved time ~ slower stream alone.
        sim = CoreSimulator(GTX_980)
        groups = 24
        popc_alone = sim.run(
            Program.independent_stream(Instruction.POPC, 32, 4), groups
        ).cycles
        both = sim.run(
            Program.interleaved_streams((Instruction.POPC, Instruction.IADD), 32, 4),
            groups,
        ).cycles
        assert both <= popc_alone * 1.2

    def test_add_and_and_share_on_vega(self):
        # Same pipe: interleaved time ~ sum of the streams.
        sim = CoreSimulator(VEGA_64)
        groups = 16
        add_alone = sim.run(
            Program.independent_stream(Instruction.IADD, 32, 4), groups
        ).cycles
        both = sim.run(
            Program.interleaved_streams((Instruction.IADD, Instruction.AND), 32, 4),
            groups,
        ).cycles
        assert both >= add_alone * 1.8

    def test_empty_program(self):
        sim = CoreSimulator(GTX_980)
        r = sim.run(Program(body=(), iterations=1), n_groups=2)
        assert r.cycles == 0


class TestSimResult:
    def test_metrics(self):
        sim = CoreSimulator(GTX_980)
        p = Program.independent_stream(Instruction.IADD, length=8, iterations=2)
        r = sim.run(p, n_groups=2)
        assert r.dynamic_instructions == 32
        assert r.instructions_per_cycle() > 0
        assert r.cycles_per_instruction() > 0
