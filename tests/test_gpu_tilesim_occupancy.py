"""Tests for repro.gpu.tilesim and repro.gpu.occupancy."""

import numpy as np
import pytest

from repro.blis.blocking import BlockingPlan
from repro.blis.gemm import bit_gemm_reference
from repro.blis.microkernel import ComparisonOp
from repro.errors import ConfigurationError, KernelLaunchError
from repro.gpu.arch import ALL_GPUS, GTX_980, TITAN_V, VEGA_64
from repro.gpu.cycles import kernel_cycles
from repro.gpu.occupancy import (
    occupancy_report,
    registers_per_thread_for,
)
from repro.gpu.tilesim import simulate_core_tile
from repro.util.bitops import pack_bits


def random_tile(m, k_words, seed=0):
    rng = np.random.default_rng(seed)
    bits = (rng.random((m, k_words * 32)) < 0.4).astype(np.uint8)
    return pack_bits(bits, 32)


class TestTileFunctional:
    @pytest.mark.parametrize(
        "op", [ComparisonOp.AND, ComparisonOp.XOR, ComparisonOp.ANDNOT]
    )
    def test_tile_matches_reference(self, op):
        a = random_tile(32, 12, 1)
        b = random_tile(96, 12, 2)
        c_tile, _ = simulate_core_tile(GTX_980, a, b, op)
        assert (c_tile == bit_gemm_reference(a, b, op)).all()

    @pytest.mark.parametrize("arch", ALL_GPUS, ids=lambda a: a.name)
    def test_all_devices_agree(self, arch):
        a = random_tile(32, 8, 3)
        b = random_tile(64, 8, 4)
        c_tile, _ = simulate_core_tile(arch, a, b)
        assert (c_tile == bit_gemm_reference(a, b)).all()

    def test_ragged_column_slice(self):
        # n_r not divisible by L_fn groups still computes correctly.
        a = random_tile(32, 4, 5)
        b = random_tile(50, 4, 6)
        c_tile, _ = simulate_core_tile(TITAN_V, a, b)
        assert (c_tile == bit_gemm_reference(a, b)).all()

    def test_validation(self):
        a = random_tile(8, 2)
        with pytest.raises(KernelLaunchError):
            simulate_core_tile(GTX_980, a.astype(np.uint64), a.astype(np.uint64))
        with pytest.raises(KernelLaunchError):
            simulate_core_tile(GTX_980, a, random_tile(8, 3))


class TestTileCensus:
    def test_conflict_free_at_bank_width(self):
        # m_c = 32 rows over 4 clusters: 8-row slices, unit stride,
        # distinct banks -> no serialization (the Eq. 5 discussion).
        a = random_tile(32, 10, 7)
        b = random_tile(64, 10, 8)
        _, stats = simulate_core_tile(GTX_980, a, b)
        assert stats.bank_conflict_factor == 1.0

    def test_op_counts(self):
        a = random_tile(32, 6, 9)
        b = random_tile(48, 6, 10)
        _, stats = simulate_core_tile(GTX_980, a, b, ComparisonOp.AND)
        assert stats.word_ops == 32 * 48 * 6
        assert stats.popc_ops == stats.word_ops          # 1 POPC per word
        assert stats.alu_ops == 2 * stats.word_ops       # AND + ADD

    def test_andnot_costs_extra_alu_on_vega(self):
        a = random_tile(32, 4, 11)
        b = random_tile(32, 4, 12)
        _, stats = simulate_core_tile(VEGA_64, a, b, ComparisonOp.ANDNOT)
        assert stats.alu_ops == 3 * stats.word_ops       # NOT + AND + ADD

    def test_global_traffic_counts_b_stream(self):
        a = random_tile(32, 5, 13)
        b = random_tile(40, 5, 14)
        _, stats = simulate_core_tile(GTX_980, a, b)
        # Every group slot streams its B slice once per k: per cluster
        # row-slice, the full n_r columns are read each k step.
        assert stats.global_read_words == GTX_980.n_cl * 40 * 5

    def test_shared_staging_words(self):
        a = random_tile(32, 7, 15)
        b = random_tile(16, 7, 16)
        _, stats = simulate_core_tile(GTX_980, a, b)
        assert stats.shared_store_words == 32 * 7


class TestCycleCrossValidation:
    """Two independent cost paths must agree: the tile walk's census
    and the closed-form model of repro.gpu.cycles."""

    @pytest.mark.parametrize("arch", ALL_GPUS, ids=lambda a: a.name)
    def test_estimate_matches_analytical_ideal(self, arch):
        k_words = 48
        n_r = 128
        a = random_tile(32, k_words, 17)
        b = random_tile(n_r, k_words, 18)
        _, stats = simulate_core_tile(arch, a, b)
        plan = BlockingPlan(
            m=32, n=n_r, k=k_words, m_c=32, k_c=k_words, m_r=4, n_r=n_r,
            grid_rows=1, grid_cols=1,
        )
        analytical = kernel_cycles(arch, plan)
        ideal_with_conflicts = (
            analytical.ideal_cycles * analytical.stall_conflict
        )
        assert stats.estimated_cycles == pytest.approx(
            ideal_with_conflicts, rel=0.05
        )


class TestOccupancy:
    @pytest.mark.parametrize("arch", ALL_GPUS, ids=lambda a: a.name)
    def test_published_configs_hide_latency(self, arch):
        from repro.core.planner import derive_config
        from repro.core.config import Algorithm

        cfg = derive_config(arch, Algorithm.LD)
        report = occupancy_report(arch, cfg.m_c, cfg.k_c, cfg.m_r, cfg.n_r)
        assert report.latency_hidden
        assert report.shared_memory_fits
        assert report.groups_chosen <= report.groups_by_device_limit
        assert report.groups_chosen <= report.groups_by_registers

    def test_framework_choice_below_device_limit(self):
        # Section V-E: the chosen residency is "significantly less than
        # the maximum number of thread groups allowed".
        report = occupancy_report(GTX_980, 32, 383, 4, 384)
        assert report.groups_chosen == 24
        assert report.groups_by_device_limit == 32
        assert report.binding_resource == "framework choice (N_cl * L_fn)"

    def test_register_pressure_binds_for_huge_tiles(self):
        report = occupancy_report(TITAN_V, 32, 383, 4, 65536)
        assert report.groups_by_registers < report.groups_chosen or (
            report.binding_resource == "register file"
        )
        assert report.registers_per_thread > 128

    def test_shared_overflow_flagged(self):
        report = occupancy_report(GTX_980, 64, 512, 4, 384)
        assert not report.shared_memory_fits

    def test_registers_per_thread_formula(self):
        # Titan V LD: 4*1024/(4*32) = 32 accumulators + 16 overhead.
        assert registers_per_thread_for(TITAN_V, 4, 1024) == 48

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            occupancy_report(GTX_980, 0, 1, 1, 1)
        with pytest.raises(ConfigurationError):
            registers_per_thread_for(GTX_980, 0, 128)
