"""Property-based tests on the framework and model invariants."""

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.blis.blocking import BlockingPlan
from repro.core.config import Algorithm
from repro.core.packing import crop_result, pack_operand
from repro.core.planner import derive_config
from repro.gpu.arch import ALL_GPUS, GTX_980
from repro.gpu.cycles import kernel_cycles
from repro.snp.stats import ld_counts_naive
from repro.util.bitops import unpack_bits

bit_matrices = hnp.arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(1, 10), st.integers(1, 100)),
    elements=st.integers(0, 1),
)


class TestPackOperandProperties:
    @settings(max_examples=50)
    @given(bit_matrices, st.sampled_from([1, 2, 4, 8]))
    def test_padding_invariants(self, bits, row_multiple):
        op = pack_operand(bits, word_bits=32, row_multiple=row_multiple)
        assert op.padded_rows % row_multiple == 0
        assert op.padded_rows >= bits.shape[0]
        assert op.n_rows == bits.shape[0]
        # Valid rows roundtrip; padding rows are all-zero words.
        assert (unpack_bits(op.words[: op.n_rows], op.n_bits) == bits).all()
        assert (op.words[op.n_rows :] == 0).all()

    @settings(max_examples=50)
    @given(bit_matrices)
    def test_negation_involution(self, bits):
        op1 = pack_operand(bits, negate=True)
        # Negating the already-negated data returns the original words.
        op2 = pack_operand(1 - bits, negate=True)
        plain = pack_operand(bits)
        assert (op2.words[: op2.n_rows] == plain.words[: plain.n_rows]).all()
        assert op1.negated and op2.negated

    @settings(max_examples=50)
    @given(bit_matrices, bit_matrices)
    def test_crop_result_shape(self, a_bits, b_bits):
        a = pack_operand(a_bits, row_multiple=4)
        b = pack_operand(b_bits, row_multiple=4)
        table = np.zeros((a.padded_rows, b.padded_rows))
        cropped = crop_result(table, a, b)
        assert cropped.shape == (a_bits.shape[0], b_bits.shape[0])


class TestCycleModelProperties:
    plans = st.builds(
        lambda m, n, k, grid: BlockingPlan(
            m=m, n=n, k=k, m_c=32, k_c=128, m_r=4, n_r=384,
            grid_rows=grid[0], grid_cols=grid[1],
        ),
        m=st.integers(1, 4096),
        n=st.integers(1, 4096),
        k=st.integers(1, 512),
        grid=st.sampled_from([(1, 1), (2, 2), (4, 4), (1, 16), (16, 1)]),
    )

    @settings(max_examples=60)
    @given(plans)
    def test_efficiency_in_unit_interval(self, plan):
        b = kernel_cycles(GTX_980, plan)
        assert 0 < b.efficiency <= 1.0

    @settings(max_examples=60)
    @given(plans)
    def test_total_at_least_ideal(self, plan):
        b = kernel_cycles(GTX_980, plan)
        assert b.total_cycles >= b.ideal_cycles

    @settings(max_examples=30)
    @given(st.integers(1, 2000), st.integers(1, 256))
    def test_more_work_never_faster(self, n, k):
        plan_small = BlockingPlan(
            m=64, n=n, k=k, m_c=32, k_c=128, m_r=4, n_r=384,
            grid_rows=1, grid_cols=16,
        )
        plan_big = BlockingPlan(
            m=64, n=n * 2, k=k, m_c=32, k_c=128, m_r=4, n_r=384,
            grid_rows=1, grid_cols=16,
        )
        t_small = kernel_cycles(GTX_980, plan_small).seconds
        t_big = kernel_cycles(GTX_980, plan_big).seconds
        # Tile quantization (n_r-unit core splits) makes the model only
        # monotone up to sub-percent boundary effects, as on silicon.
        assert t_big >= t_small * 0.98


class TestFrameworkRoundtrip:
    @settings(max_examples=10, deadline=None)
    @given(bit_matrices)
    def test_ld_matches_oracle_on_random_inputs(self, bits):
        from repro.core.framework import SNPComparisonFramework

        fw = SNPComparisonFramework(GTX_980, Algorithm.LD)
        counts, _ = fw.run(bits)
        assert (counts == ld_counts_naive(bits)).all()

    def test_all_devices_agree_bitwise(self):
        rng = np.random.default_rng(0)
        bits = (rng.random((12, 96)) < 0.5).astype(np.uint8)
        results = []
        from repro.core.framework import SNPComparisonFramework

        for arch in ALL_GPUS:
            fw = SNPComparisonFramework(arch, Algorithm.LD)
            counts, _ = fw.run(bits)
            results.append(counts)
        assert (results[0] == results[1]).all()
        assert (results[1] == results[2]).all()


class TestPlannerProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(ALL_GPUS), st.sampled_from(list(Algorithm)))
    def test_derived_configs_always_compile(self, arch, algorithm):
        from repro.gpu.kernel import SnpKernel

        cfg = derive_config(arch, algorithm)
        kernel = SnpKernel.compile(
            arch, cfg.op, m_c=cfg.m_c, m_r=cfg.m_r, k_c=cfg.k_c, n_r=cfg.n_r,
            grid_rows=cfg.grid_rows, grid_cols=cfg.grid_cols,
        )
        assert kernel.n_cores <= arch.n_c
