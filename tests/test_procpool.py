"""Tests for repro.parallel.procpool: the process executor tier.

Covers the acceptance gates of the process tier (docs/DISTRIBUTED.md):
bit-exactness against the serial reference and the thread tier on all
three workloads, merged deterministic counters identical to a threaded
run, worker-loss recovery with exact ``resilience.workers_lost``
accounting and no orphaned shared-memory segments, executor-aware
tuning records with legacy degradation, and the shared ``workers``
validator at every entry point.
"""

import os

import numpy as np
import pytest

from repro.blis.gemm import bit_gemm_reference
from repro.blis.microkernel import ComparisonOp
from repro.core.identity import identity_search
from repro.core.ld import linkage_disequilibrium
from repro.core.mixture import mixture_analysis
from repro.errors import ConfigurationError, ShardExecutionError
from repro.io_stream import write_snpbin
from repro.io_stream.format import PackedDatasetReader, packed_words_ref
from repro.observability.regress import DETERMINISTIC_COUNTERS
from repro.observability.tracer import Tracer, set_tracer
from repro.parallel import ParallelEngine, ProcessShardExecutor
from repro.parallel.engine import REPRO_EXECUTOR_ENV
from repro.parallel.procpool import REPRO_MP_START_ENV
from repro.parallel.tuner import TuningRecord, lookup_tuned, tuning_key
from repro.resilience.runtime import resilient
from repro.util.bitops import pack_bits
from repro.util.validation import check_workers

OP = ComparisonOp.AND

#: Rows x sites above the parallel crossover (2^21 word-ops) so the
#: framework-level workload tests actually engage the sharded path.
WORKLOAD_ROWS = 256
WORKLOAD_SITES = 2048


def shm_segments() -> set:
    """Names of live POSIX shared-memory segments (Linux only)."""
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def deterministic_counters(engine, pa, pb, **kwargs) -> dict:
    """DETERMINISTIC_COUNTERS snapshot of one instrumented run."""
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        engine.run(pa, pb, OP, force_parallel=True, **kwargs)
    finally:
        set_tracer(previous)
    return {
        name: value
        for name, value in tracer.counters.snapshot().items()
        if name in DETERMINISTIC_COUNTERS
    }


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(11)
    bits_a = (rng.random((96, 512)) < 0.4).astype(np.uint8)
    bits_b = (rng.random((128, 512)) < 0.6).astype(np.uint8)
    return pack_bits(bits_a, 32), pack_bits(bits_b, 32)


@pytest.fixture(scope="module")
def proc_engine():
    engine = ParallelEngine(workers=2, executor="process")
    yield engine
    engine.shutdown()


class TestProcessExecutor:
    @pytest.mark.parametrize(
        "op", [ComparisonOp.AND, ComparisonOp.XOR, ComparisonOp.ANDNOT]
    )
    def test_bit_exact_vs_serial_and_thread(self, operands, proc_engine, op):
        pa, pb = operands
        expected = bit_gemm_reference(pa, pb, op)
        thread_engine = ParallelEngine(workers=2, executor="thread")
        try:
            thread_table, _ = thread_engine.run(
                pa, pb, op, force_parallel=True
            )
        finally:
            thread_engine.shutdown()
        table, report = proc_engine.run(pa, pb, op, force_parallel=True)
        assert report.executor == "process"
        assert report.n_shards > 1
        assert (table == expected).all()
        assert (table == thread_table).all()

    def test_gram_self_comparison(self, operands, proc_engine):
        pa, _ = operands
        expected = bit_gemm_reference(pa, pa, OP)
        table, report = proc_engine.run(pa, pa, OP, force_parallel=True)
        assert report.symmetric
        assert report.executor == "process"
        assert (table == expected).all()
        assert (table == table.T).all()

    def test_clean_run_report_fields(self, operands, proc_engine):
        pa, pb = operands
        _, report = proc_engine.run(pa, pb, OP, force_parallel=True)
        assert report.workers_lost == 0
        assert report.worker_events == ()
        assert len(report.shard_profiles) == report.n_shards

    def test_single_shard_falls_back_to_thread(self):
        pa = pack_bits(np.ones((4, 32), dtype=np.uint8), 32)
        engine = ParallelEngine(workers=2, executor="process")
        try:
            table, report = engine.run(pa, pa, OP, force_parallel=True)
        finally:
            engine.shutdown()
        # Nothing to parallelize: the report names the tier that ran.
        assert report.n_shards == 1
        assert report.executor == "thread"
        assert (table == bit_gemm_reference(pa, pa, OP)).all()

    def test_deterministic_counters_match_thread(self, operands, proc_engine):
        pa, pb = operands
        thread_engine = ParallelEngine(workers=2, executor="thread")
        try:
            thread_counters = deterministic_counters(thread_engine, pa, pb)
        finally:
            thread_engine.shutdown()
        process_counters = deterministic_counters(proc_engine, pa, pb)
        assert process_counters == thread_counters
        assert process_counters["shards.executed"] > 1

    def test_concurrent_runs_on_shared_engine(self, operands, proc_engine):
        # Engines are shared process-wide (get_engine), and pipelined
        # serving dispatches batches concurrently: runs must serialize
        # on the executor's run lock instead of stealing each other's
        # claim/done messages off the single result queue.
        from concurrent.futures import ThreadPoolExecutor as TPE

        pa, pb = operands
        ops = [ComparisonOp.AND, ComparisonOp.XOR, ComparisonOp.ANDNOT]

        def one(op):
            table, report = proc_engine.run(pa, pb, op, force_parallel=True)
            return op, table, report

        with TPE(max_workers=len(ops)) as pool:
            futures = [pool.submit(one, op) for op in ops]
            results = [f.result(timeout=120) for f in futures]
        for op, table, report in results:
            assert report.executor == "process"
            assert (table == bit_gemm_reference(pa, pb, op)).all()

    def test_mmap_operand_publishes_zero_copy(self, tmp_path, proc_engine):
        rng = np.random.default_rng(5)
        bits = (rng.random((192, 1024)) < 0.5).astype(np.uint8)
        path = tmp_path / "db.snpbin"
        write_snpbin(path, bits, word_bits=32)
        with PackedDatasetReader(path) as reader:
            words = reader.read_words(0, reader.n_rows)
            # File-backed operands travel by (path, offset, shape) --
            # no copy into a shared-memory segment.
            assert packed_words_ref(words) is not None
            pb = pack_bits(bits, 32)
            expected = bit_gemm_reference(pb, pb, OP)
            table, report = proc_engine.run(
                words, words, OP, force_parallel=True
            )
        assert report.executor == "process"
        assert (table == expected).all()

    def test_cow_memmap_falls_back_to_shared_memory(self, tmp_path):
        # mode="c" (copy-on-write) mappings can hold parent-side edits
        # that never reach the file; a worker re-mapping the file would
        # silently compute against different data.  They must publish
        # through the shared-memory copy path, not the mmap ref.
        rng = np.random.default_rng(7)
        shape = (128, 32)
        words = rng.integers(0, 2**32, size=shape, dtype=np.uint64)
        path = tmp_path / "raw.bin"
        words.tofile(path)
        ro = np.memmap(path, dtype=np.uint64, mode="r", shape=shape)
        assert packed_words_ref(ro) is not None
        cow = np.memmap(path, dtype=np.uint64, mode="c", shape=shape)
        assert packed_words_ref(cow) is None
        # End to end: a COW-modified operand must give the same result
        # under the process executor as the serial reference sees.
        cow[0, :] ^= np.uint64(0xFFFF)
        expected = bit_gemm_reference(
            np.array(cow, copy=True), np.array(cow, copy=True), OP
        )
        engine = ParallelEngine(workers=2, executor="process")
        try:
            table, report = engine.run(cow, cow, OP, force_parallel=True)
        finally:
            engine.shutdown()
        assert report.executor == "process"
        assert (table == expected).all()


class TestWorkloads:
    """All three applications, process vs thread, end to end."""

    @pytest.fixture(scope="class")
    def matrices(self):
        rng = np.random.default_rng(23)
        a = rng.integers(
            0, 2, size=(WORKLOAD_ROWS, WORKLOAD_SITES), dtype=np.uint8
        )
        b = rng.integers(
            0, 2, size=(WORKLOAD_ROWS, WORKLOAD_SITES), dtype=np.uint8
        )
        return a, b

    def test_ld_bit_exact(self, matrices):
        a, _ = matrices
        threaded = linkage_disequilibrium(
            a, compare="samples", workers=2, executor="thread"
        )
        processed = linkage_disequilibrium(
            a, compare="samples", workers=2, executor="process"
        )
        assert (processed.counts == threaded.counts).all()

    def test_identity_bit_exact(self, matrices):
        a, b = matrices
        threaded = identity_search(a, b, workers=2, executor="thread")
        processed = identity_search(a, b, workers=2, executor="process")
        assert (processed.distances == threaded.distances).all()

    def test_mixture_bit_exact(self, matrices):
        a, b = matrices
        threaded = mixture_analysis(a, b, workers=2, executor="thread")
        processed = mixture_analysis(a, b, workers=2, executor="process")
        assert (processed.scores == threaded.scores).all()


class TestWorkerLoss:
    """Targeted worker kills fire when the victim *claims* a shard, so
    these tests warm the pool (both workers booted and blocked on the
    task queue) and use a problem large enough that every worker claims
    work before the queue drains."""

    @pytest.fixture(scope="class")
    def loss_operands(self):
        rng = np.random.default_rng(31)
        bits_a = (rng.random((256, 2048)) < 0.4).astype(np.uint8)
        bits_b = (rng.random((256, 2048)) < 0.6).astype(np.uint8)
        return pack_bits(bits_a, 32), pack_bits(bits_b, 32)

    def test_worker_lost_recovers_exactly(self, loss_operands):
        pa, pb = loss_operands
        expected = bit_gemm_reference(pa, pb, OP)
        before = shm_segments()
        engine = ParallelEngine(workers=2, executor="process")
        try:
            engine.run(pa, pb, OP, force_parallel=True)  # warm the pool
            with resilient("worker-lost@1"):
                table, report = engine.run(pa, pb, OP, force_parallel=True)
                assert (table == expected).all()
                assert report.workers_lost == 1
                res = report.resilience
                assert res is not None
                assert res.workers_lost == 1
                assert not res.clean
                fired = [
                    e for e in res.events if e.kind == "worker-lost"
                ]
                assert (
                    [(e.target, e.site) for e in fired]
                    == [(1, "procpool")]
                )
                # Survivors re-executed the dead worker's claimed
                # shards; every shard still landed exactly once.
                assert len(report.shard_profiles) == report.n_shards
            # Outside the fault scope the pool self-heals: the next
            # run respawns the dead worker and loses nothing.
            table2, report2 = engine.run(pa, pb, OP, force_parallel=True)
            assert (table2 == expected).all()
            assert report2.workers_lost == 0
        finally:
            engine.shutdown()
        assert shm_segments() <= before  # no orphaned segments

    def test_all_workers_lost_raises(self, operands):
        pa, pb = operands
        engine = ParallelEngine(workers=2, executor="process")
        try:
            with resilient("worker-lost@0,worker-lost@1"):
                with pytest.raises(ShardExecutionError):
                    engine.run(pa, pb, OP, force_parallel=True)
            # Outside the fault scope a clean rerun succeeds on a
            # freshly respawned pool.
            table, report = engine.run(pa, pb, OP, force_parallel=True)
            assert report.workers_lost == 0
            assert (table == bit_gemm_reference(pa, pb, OP)).all()
        finally:
            engine.shutdown()

    def test_counters_stay_exact_across_loss(self, loss_operands):
        pa, pb = loss_operands
        clean_engine = ParallelEngine(workers=2, executor="process")
        try:
            clean = deterministic_counters(clean_engine, pa, pb)
        finally:
            clean_engine.shutdown()
        lossy_engine = ParallelEngine(workers=2, executor="process")
        try:
            lossy_engine.run(pa, pb, OP, force_parallel=True)  # warm pool
            tracer = Tracer()
            previous = set_tracer(tracer)
            try:
                with resilient("worker-lost@0"):
                    lossy_engine.run(pa, pb, OP, force_parallel=True)
            finally:
                set_tracer(previous)
        finally:
            lossy_engine.shutdown()
        lossy = {
            name: value
            for name, value in tracer.counters.snapshot().items()
            if name in DETERMINISTIC_COUNTERS
        }
        assert lossy == clean
        assert tracer.counters.snapshot()["resilience.workers_lost"] == 1


class TestEnvResolution:
    def test_env_forces_process(self, operands, monkeypatch):
        pa, pb = operands
        monkeypatch.setenv(REPRO_EXECUTOR_ENV, "process")
        engine = ParallelEngine(workers=2)  # executor="auto"
        try:
            _, report = engine.run(pa, pb, OP, force_parallel=True)
        finally:
            engine.shutdown()
        assert report.executor == "process"

    def test_env_empty_is_ignored(self, operands, monkeypatch):
        pa, pb = operands
        monkeypatch.setenv(REPRO_EXECUTOR_ENV, "")
        engine = ParallelEngine(workers=2)
        try:
            _, report = engine.run(pa, pb, OP, force_parallel=True)
        finally:
            engine.shutdown()
        assert report.executor == "thread"

    def test_env_invalid_rejected(self, operands, monkeypatch):
        pa, pb = operands
        monkeypatch.setenv(REPRO_EXECUTOR_ENV, "rocket")
        engine = ParallelEngine(workers=2)
        try:
            with pytest.raises(ConfigurationError):
                engine.run(pa, pb, OP, force_parallel=True)
        finally:
            engine.shutdown()

    def test_invalid_start_method_rejected(self, operands, monkeypatch):
        pa, pb = operands
        monkeypatch.setenv(REPRO_MP_START_ENV, "bogus")
        engine = ParallelEngine(workers=2, executor="process")
        try:
            with pytest.raises(ConfigurationError):
                engine.run(pa, pb, OP, force_parallel=True)
        finally:
            engine.shutdown()


class TestWorkersValidation:
    """One shared validator behind every workers-accepting entry point."""

    def test_check_workers_contract(self):
        assert check_workers("x", 3) == 3
        assert check_workers("x", 0, zero_means_default=True) == 0
        with pytest.raises(ValueError, match="x"):
            check_workers("x", 0)
        with pytest.raises(ValueError):
            check_workers("x", -1, zero_means_default=True)
        with pytest.raises(ValueError, match="integer"):
            check_workers("x", 2.0)
        with pytest.raises(ValueError, match="integer"):
            check_workers("x", True)

    @pytest.mark.parametrize("workers", [0, -1])
    def test_engine_rejects(self, workers):
        with pytest.raises(ConfigurationError, match="workers"):
            ParallelEngine(workers=workers)

    def test_process_pool_rejects(self):
        with pytest.raises(ConfigurationError, match="workers"):
            ProcessShardExecutor(workers=0)

    def test_identity_service_rejects(self):
        from repro.serve import IdentityService, ProfileIndex

        index = ProfileIndex(n_bits=64)
        index.append(np.ones((4, 64), dtype=np.uint8))
        with index:
            with pytest.raises(ConfigurationError, match="workers"):
                IdentityService(index, workers=0)

    def test_cli_rejects_negative(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        from repro.snp.dataset import SNPDataset
        from repro.snp.io import write_snptxt

        path = tmp_path / "pop.snptxt"
        matrix = np.ones((8, 32), dtype=np.uint8)
        write_snptxt(path, SNPDataset(matrix=matrix))
        code = cli_main([
            "ld", "--input", str(path), "--compare", "samples",
            "--workers", "-2",
        ])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_cli_executor_flag_accepted(self, tmp_path):
        from repro.cli import main as cli_main
        from repro.snp.dataset import SNPDataset
        from repro.snp.io import write_snptxt

        path = tmp_path / "pop.snptxt"
        rng = np.random.default_rng(3)
        matrix = rng.integers(0, 2, size=(16, 64), dtype=np.uint8)
        write_snptxt(path, SNPDataset(matrix=matrix))
        code = cli_main([
            "ld", "--input", str(path), "--compare", "samples",
            "--workers", "2", "--executor", "process",
        ])
        assert code == 0


class TestLazyProcpoolImport:
    def test_package_import_stays_lazy(self):
        # The process tier pulls in multiprocessing machinery most runs
        # never need; importing repro.parallel must not pay for it.
        import subprocess
        import sys

        code = (
            "import sys\n"
            "import repro.parallel\n"
            "assert 'repro.parallel.procpool' not in sys.modules, "
            "'procpool imported eagerly'\n"
            "from repro.parallel import ProcessShardExecutor\n"
            "assert 'repro.parallel.procpool' in sys.modules\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True)


class TestTunerExecutorAxis:
    def test_key_suffix_separates_tiers(self):
        thread_key = tuning_key(OP, 256, 256, 16, 32, 4)
        process_key = tuning_key(OP, 256, 256, 16, 32, 4, executor="process")
        assert thread_key != process_key
        assert process_key.endswith("|exprocess")
        # Thread keys keep the legacy unsuffixed form, so caches
        # persisted before the executor axis existed still resolve.
        assert "|ex" not in thread_key

    def test_key_rejects_unknown_executor(self):
        with pytest.raises(ConfigurationError):
            tuning_key(OP, 256, 256, 16, 32, 4, executor="rocket")

    def test_record_roundtrip_keeps_executor(self):
        record = TuningRecord(
            strategy="gemm", triangular=False, crossover_ops=None,
            best_seconds=0.5, candidates=4, executor="process",
        )
        assert TuningRecord.from_json(record.to_json()).executor == "process"

    def test_stale_record_degrades_to_thread(self):
        record = TuningRecord(
            strategy="gemm", triangular=False, crossover_ops=None,
            best_seconds=0.5, candidates=4,
        )
        payload = record.to_json()
        del payload["executor"]  # a record persisted before the field
        assert TuningRecord.from_json(payload).executor == "thread"

    def test_record_rejects_unknown_executor(self):
        record = TuningRecord(
            strategy="gemm", triangular=False, crossover_ops=None,
            best_seconds=0.5, candidates=4,
        )
        payload = record.to_json()
        payload["executor"] = "rocket"
        with pytest.raises(ValueError):
            TuningRecord.from_json(payload)

    def test_lookup_is_executor_scoped(self, tmp_path, monkeypatch):
        from repro.parallel import tuner

        cache = tuner.configure_tuning(tmp_path / "tuning.json")
        record = TuningRecord(
            strategy="blocked", triangular=False, crossover_ops=None,
            best_seconds=0.25, candidates=2, executor="process",
        )
        cache.store(
            tuning_key(OP, 256, 256, 16, 32, 4, executor="process"), record
        )
        try:
            assert lookup_tuned(OP, 256, 256, 16, 32, 4) is None
            found = lookup_tuned(
                OP, 256, 256, 16, 32, 4, executor="process"
            )
            assert found is not None and found.executor == "process"
        finally:
            tuner.configure_tuning(None)
