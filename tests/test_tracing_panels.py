"""Tests for repro.gpu.tracing and repro.snp.panels."""

import json

import numpy as np
import pytest

from repro.core.config import Algorithm
from repro.core.framework import SNPComparisonFramework
from repro.core.packing import pack_operand
from repro.core.pipeline import run_pipeline
from repro.errors import DatasetError
from repro.gpu.arch import GTX_980
from repro.gpu.device import Device
from repro.gpu.tracing import trace_events, write_chrome_trace
from repro.snp.panels import (
    ALL_PANELS,
    FORENSIC_CORE,
    GWAS_ARRAY,
    WGS_COMMON,
    PanelSpec,
    get_panel,
)


def make_traced_queue():
    rng = np.random.default_rng(0)
    a = pack_operand((rng.random((12, 320)) < 0.4).astype(np.uint8), row_multiple=4)
    b = pack_operand((rng.random((600, 320)) < 0.4).astype(np.uint8), row_multiple=4)
    from repro.blis.microkernel import ComparisonOp
    from repro.gpu.kernel import SnpKernel

    kernel = SnpKernel.compile(
        GTX_980, ComparisonOp.AND, m_c=32, m_r=4, k_c=383, n_r=384,
        grid_rows=4, grid_cols=4,
    )
    queue = Device(GTX_980).create_context().create_queue()
    run_pipeline(queue, kernel, a, b)
    return queue


class TestTracing:
    def test_events_structure(self):
        queue = make_traced_queue()
        events = trace_events(queue)
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(metadata) == 4  # process + 3 lanes
        assert complete  # at least write A, write B, kernel, read C
        for e in complete:
            assert e["dur"] >= 0
            assert e["ts"] >= 0
            assert e["cat"] in ("h2d", "compute", "d2h")

    def test_event_counts_match_commands(self):
        queue = make_traced_queue()
        complete = [e for e in trace_events(queue) if e["ph"] == "X"]
        intervals = (
            len(queue.transfers.h2d.intervals)
            + len(queue.compute.intervals)
            + len(queue.transfers.d2h.intervals)
        )
        assert len(complete) == intervals

    def test_timestamps_in_microseconds(self):
        queue = make_traced_queue()
        complete = [e for e in trace_events(queue) if e["ph"] == "X"]
        latest_end = max(e["ts"] + e["dur"] for e in complete)
        assert latest_end == pytest.approx(queue.finish() * 1e6, rel=1e-9)

    def test_write_chrome_trace_valid_json(self, tmp_path):
        queue = make_traced_queue()
        path = tmp_path / "trace.json"
        count = write_chrome_trace(queue, path)
        loaded = json.loads(path.read_text())
        assert len(loaded) == count
        assert any(e.get("name") == "process_name" for e in loaded)


class TestPanels:
    def test_registry(self):
        assert get_panel("gwas-array") is GWAS_ARRAY
        assert get_panel("  Forensic-Core ") is FORENSIC_CORE
        with pytest.raises(DatasetError):
            get_panel("codis-20")

    def test_all_panels_materialize_populations(self):
        for panel in ALL_PANELS:
            sites = min(panel.n_sites, 2000)
            small = PanelSpec(
                name=panel.name, description=panel.description,
                n_sites=sites, maf_alpha=panel.maf_alpha,
                maf_beta=panel.maf_beta, block_size=panel.block_size,
                founders_per_block=panel.founders_per_block,
            )
            ds = small.population(30, rng=1)
            assert ds.matrix.shape == (30, sites)

    def test_database_generation(self):
        db = FORENSIC_CORE.database(50, rng=2)
        assert db.n_profiles == 50
        assert db.n_sites == 96

    def test_density_ordering(self):
        # Forensic panels select common variants; WGS panels skew rare.
        assert FORENSIC_CORE.expected_density > GWAS_ARRAY.expected_density
        assert GWAS_ARRAY.expected_density > WGS_COMMON.expected_density

    def test_observed_density_tracks_expectation(self):
        ds = FORENSIC_CORE.population(800, rng=3)
        observed = ds.matrix.mean()
        assert observed == pytest.approx(FORENSIC_CORE.expected_density, abs=0.08)

    def test_panel_with_framework(self):
        # Panels plug straight into the comparison framework.
        ds = FORENSIC_CORE.population(24, rng=4)
        fw = SNPComparisonFramework("GTX 980", Algorithm.LD)
        counts, _ = fw.run(ds.matrix)
        assert counts.shape == (24, 24)

    def test_invalid_spec_rejected(self):
        with pytest.raises(DatasetError):
            PanelSpec(name="bad", description="", n_sites=0,
                      maf_alpha=1, maf_beta=1)
