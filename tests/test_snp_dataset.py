"""Tests for repro.snp.dataset.SNPDataset."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.snp.dataset import SNPDataset


def make(matrix=None, **kwargs):
    if matrix is None:
        matrix = np.array([[0, 1, 0], [1, 1, 0]], dtype=np.uint8)
    return SNPDataset(matrix=matrix, **kwargs)


class TestConstruction:
    def test_shapes_and_defaults(self):
        ds = make()
        assert ds.n_samples == 2
        assert ds.n_sites == 3
        assert ds.sample_ids == ["sample_0000", "sample_0001"]
        assert ds.site_ids == ["rs0", "rs1", "rs2"]

    def test_bool_matrix_converted(self):
        ds = make(np.array([[True, False]]))
        assert ds.matrix.dtype == np.uint8

    def test_non_binary_rejected(self):
        with pytest.raises(DatasetError):
            make(np.array([[0, 2]], dtype=np.uint8))

    def test_non_binary_int_rejected(self):
        with pytest.raises(DatasetError):
            make(np.array([[0, 5]], dtype=np.int64))

    def test_non_2d_rejected(self):
        with pytest.raises(DatasetError):
            make(np.zeros(4))

    def test_id_length_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            make(sample_ids=["only_one"])
        with pytest.raises(DatasetError):
            make(site_ids=["a"])

    def test_repr_mentions_shape(self):
        assert "n_samples=2" in repr(make())


class TestOperations:
    def test_minor_allele_frequency(self):
        ds = make()
        assert ds.minor_allele_frequency().tolist() == [0.5, 1.0, 0.0]

    def test_subset_samples(self):
        ds = make()
        sub = ds.subset_samples([1])
        assert sub.n_samples == 1
        assert sub.sample_ids == ["sample_0001"]
        assert (sub.matrix == ds.matrix[1:2]).all()

    def test_subset_sites(self):
        ds = make()
        sub = ds.subset_sites([2, 0])
        assert sub.site_ids == ["rs2", "rs0"]
        assert (sub.matrix == ds.matrix[:, [2, 0]]).all()

    def test_subset_returns_copy(self):
        ds = make()
        sub = ds.subset_samples([0])
        sub.matrix[0, 0] = 1
        assert ds.matrix[0, 0] == 0

    def test_concat_samples(self):
        a = make()
        b = make()
        both = a.concat_samples(b)
        assert both.n_samples == 4
        assert both.n_sites == 3

    def test_concat_mismatched_sites_rejected(self):
        a = make()
        b = SNPDataset(matrix=np.zeros((1, 5), dtype=np.uint8))
        with pytest.raises(DatasetError):
            a.concat_samples(b)

    def test_empty_dataset_frequency(self):
        ds = SNPDataset(matrix=np.zeros((0, 4), dtype=np.uint8))
        assert ds.minor_allele_frequency().shape == (4,)
