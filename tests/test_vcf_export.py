"""Tests for repro.snp.vcf and repro.bench.export."""

import csv
import json

import pytest

from repro.bench.export import export_all, main as export_main
from repro.errors import DatasetError
from repro.snp.generator import PopulationModel, generate_population
from repro.snp.vcf import read_vcf, write_vcf

VCF_TEXT = """\
##fileformat=VCFv4.2
##source=test
#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\ts1\ts2\ts3
1\t100\trs1\tA\tG\t50\tPASS\t.\tGT\t0/0\t0/1\t1/1
1\t200\trs2\tC\tT\t50\tPASS\t.\tGT:DP\t0|0:12\t.\t1|0:9
1\t300\t.\tG\tA\t50\tPASS\t.\tGT\t1\t0\t.
1\t400\trs4\tT\tC\t50\tq10\t.\tGT\t1/1\t1/1\t1/1
1\t500\trs5\tA\tAT\t50\tPASS\t.\tGT\t0/1\t0/0\t0/0
1\t600\trs6\tA\tG,T\t50\tPASS\t.\tGT\t1/2\t0/0\t0/2
"""


class TestReadVcf:
    def test_basic_parsing(self, tmp_path):
        path = tmp_path / "x.vcf"
        path.write_text(VCF_TEXT)
        ds = read_vcf(path)
        assert ds.sample_ids == ["s1", "s2", "s3"]
        # rs4 filtered (q10), rs5 an indel: both skipped.
        assert ds.site_ids == ["rs1", "rs2", "1:300", "rs6"]
        assert ds.matrix.shape == (3, 4)

    def test_genotype_reduction(self, tmp_path):
        path = tmp_path / "x.vcf"
        path.write_text(VCF_TEXT)
        ds = read_vcf(path)
        # rs1: 0/0, 0/1, 1/1 -> 0, 1, 1.
        assert ds.matrix[:, 0].tolist() == [0, 1, 1]
        # rs2: phased 0|0, missing ., 1|0 -> 0, 0, 1.
        assert ds.matrix[:, 1].tolist() == [0, 0, 1]
        # haploid calls at 1:300 -> 1, 0, 0 (missing = absence).
        assert ds.matrix[:, 2].tolist() == [1, 0, 0]
        # rs6 multi-allelic: any non-ref allele counts.
        assert ds.matrix[:, 3].tolist() == [1, 0, 1]

    def test_require_pass_false_keeps_filtered(self, tmp_path):
        path = tmp_path / "x.vcf"
        path.write_text(VCF_TEXT)
        ds = read_vcf(path, require_pass=False)
        assert "rs4" in ds.site_ids

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.vcf"
        path.write_text("1\t1\trs1\tA\tG\t.\tPASS\t.\tGT\t0/1\n")
        with pytest.raises(DatasetError, match="before #CHROM|no #CHROM"):
            read_vcf(path)

    def test_column_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.vcf"
        path.write_text(
            "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\ts1\ts2\n"
            "1\t1\trs1\tA\tG\t.\tPASS\t.\tGT\t0/1\n"
        )
        with pytest.raises(DatasetError, match="columns"):
            read_vcf(path)

    def test_non_gt_format_rejected(self, tmp_path):
        path = tmp_path / "bad.vcf"
        path.write_text(
            "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\ts1\n"
            "1\t1\trs1\tA\tG\t.\tPASS\t.\tDP:GT\t12:0/1\n"
        )
        with pytest.raises(DatasetError, match="GT"):
            read_vcf(path)

    def test_malformed_gt_rejected(self, tmp_path):
        path = tmp_path / "bad.vcf"
        path.write_text(
            "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\ts1\n"
            "1\t1\trs1\tA\tG\t.\tPASS\t.\tGT\tx/y\n"
        )
        with pytest.raises(DatasetError, match="malformed GT"):
            read_vcf(path)

    def test_roundtrip_through_write(self, tmp_path):
        original = generate_population(PopulationModel(8, 15), rng=0)
        path = tmp_path / "rt.vcf"
        write_vcf(path, original)
        loaded = read_vcf(path)
        assert (loaded.matrix == original.matrix).all()
        assert loaded.sample_ids == original.sample_ids
        assert loaded.site_ids == original.site_ids

    def test_empty_sites(self, tmp_path):
        path = tmp_path / "empty.vcf"
        path.write_text(
            "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\ta\tb\n"
        )
        ds = read_vcf(path)
        assert ds.matrix.shape == (2, 0)


class TestExport:
    def test_export_all_files(self, tmp_path):
        written = export_all(tmp_path)
        for artifact in ("table1", "table2", "fig5", "fig6", "fig7", "fig8",
                         "fig9", "manifest"):
            assert artifact in written
            assert (tmp_path / written[artifact]).exists()

    def test_fig5_csv_contents(self, tmp_path):
        export_all(tmp_path)
        with (tmp_path / "fig5.csv").open() as fh:
            rows = list(csv.DictReader(fh))
        devices = {r["device"] for r in rows}
        assert devices == {"GTX 980", "Titan V", "Vega 64"}
        for row in rows:
            assert float(row["gpops"]) <= float(row["peak_gpops"]) + 1e-9

    def test_manifest_headline(self, tmp_path):
        export_all(tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        measured = manifest["headline"]["fig5_efficiency"]
        paper = manifest["headline"]["fig5_efficiency_paper"]
        for device, value in paper.items():
            assert abs(measured[device] - value) < 0.01

    def test_table2_csv(self, tmp_path):
        export_all(tmp_path)
        with (tmp_path / "table2.csv").open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 6
        ld980 = next(r for r in rows if "GTX 980" in r["configuration"]
                     and "Linkage" in r["configuration"])
        assert ld980["n_r"] == "384"

    def test_cli_main(self, tmp_path, capsys):
        assert export_main([str(tmp_path / "out")]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
