"""Tests for repro.blis.blocking: tiling and core-grid partitioning."""

import numpy as np
import pytest

from repro.blis.blocking import BlockingPlan, split_evenly, tile_ranges
from repro.errors import ConfigurationError


class TestTileRanges:
    def test_exact_division(self):
        assert tile_ranges(8, 4) == [(0, 4), (4, 8)]

    def test_remainder_tile(self):
        assert tile_ranges(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_zero_extent(self):
        assert tile_ranges(0, 4) == []

    def test_block_larger_than_extent(self):
        assert tile_ranges(3, 100) == [(0, 3)]

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            tile_ranges(10, 0)
        with pytest.raises(ConfigurationError):
            tile_ranges(-1, 4)

    def test_partition_property(self):
        ranges = tile_ranges(97, 7)
        covered = [i for s, e in ranges for i in range(s, e)]
        assert covered == list(range(97))


class TestSplitEvenly:
    def test_even(self):
        assert split_evenly(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_first(self):
        assert split_evenly(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_more_parts_than_extent(self):
        parts = split_evenly(2, 4)
        sizes = [e - s for s, e in parts]
        assert sizes == [1, 1, 0, 0]

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            split_evenly(5, 0)


class TestBlockingPlan:
    def make(self, **kw):
        defaults = dict(m=64, n=128, k=10, m_c=32, k_c=8, m_r=4, n_r=16)
        defaults.update(kw)
        return BlockingPlan(**defaults)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.make(m_c=30)  # not multiple of m_r
        with pytest.raises(ConfigurationError):
            self.make(m=-1)
        with pytest.raises(ConfigurationError):
            self.make(n_r=0)

    def test_k_panels(self):
        plan = self.make(k=20, k_c=8)
        assert plan.k_panels() == [(0, 8), (8, 16), (16, 20)]

    def test_total_ops(self):
        assert self.make().total_ops() == 64 * 128 * 10

    def test_core_assignments_cover_output(self):
        plan = self.make(grid_rows=2, grid_cols=3)
        cover = np.zeros((plan.m, plan.n), dtype=int)
        for a in plan.core_assignments():
            cover[a.m_range[0] : a.m_range[1], a.n_range[0] : a.n_range[1]] += 1
        assert (cover == 1).all()

    def test_core_assignment_count(self):
        plan = self.make(grid_rows=2, grid_cols=3)
        assert len(plan.core_assignments()) == 6
        assert plan.n_cores == 6

    def test_skewed_grid_balances_m(self):
        # 80x1 grid on a prime-ish unit count: micro-panel granularity
        # keeps the busiest core within one m_r unit of the average.
        plan = BlockingPlan(
            m=12256, n=12256, k=100, m_c=32, k_c=50, m_r=4, n_r=1024,
            grid_rows=80, grid_cols=1,
        )
        sizes = [a.m_size for a in plan.core_assignments()]
        assert max(sizes) - min(sizes) <= plan.m_r
        assert sum(sizes) == plan.m

    def test_micro_tiles_cover_core_block(self):
        plan = self.make()
        m_range, n_range = (0, 10), (0, 33)
        tiles = plan.micro_tiles(m_range, n_range)
        cover = np.zeros((10, 33), dtype=int)
        for (m0, m1), (n0, n1) in tiles:
            cover[m0:m1, n0:n1] += 1
        assert (cover == 1).all()

    def test_micro_tile_sizes_bounded(self):
        plan = self.make()
        for (m0, m1), (n0, n1) in plan.micro_tiles((0, 64), (0, 128)):
            assert m1 - m0 <= plan.m_r
            assert n1 - n0 <= plan.n_r

    def test_empty_assignments_for_tiny_extent(self):
        plan = self.make(m=4, grid_rows=4)
        assignments = plan.core_assignments()
        # Only one micro-panel unit exists: three grid rows are empty.
        non_empty = [a for a in assignments if not a.is_empty]
        assert len(non_empty) == 1 * 1
