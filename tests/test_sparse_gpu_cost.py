"""Tests for repro.sparse.gpu_cost: device-level sparse pricing."""

import pytest

from repro.errors import ModelError
from repro.gpu.arch import ALL_GPUS, GTX_980, TITAN_V, VEGA_64
from repro.sparse.cost import density_crossover
from repro.sparse.gpu_cost import DeviceSparseModel, device_density_crossover


class TestDeviceSparseModel:
    def test_rates(self):
        model = DeviceSparseModel(arch=GTX_980)
        # 4 clusters x 32 ALUs / (4 ops / 0.25 eff) = 8 matches/cycle.
        assert model.sparse_matches_per_cycle_per_core() == pytest.approx(8.0)

    def test_dense_time_matches_peak(self):
        model = DeviceSparseModel(arch=GTX_980)
        # 64x64x320 words at 700 Gword-ops/s.
        t = model.dense_seconds(64, 64, 320 * 32)
        assert t == pytest.approx(64 * 64 * 320 / 699.9e9, rel=1e-3)

    def test_sparse_time_quadratic_in_density(self):
        model = DeviceSparseModel(arch=TITAN_V)
        t1 = model.sparse_seconds(32, 32, 10_000, 0.01)
        t2 = model.sparse_seconds(32, 32, 10_000, 0.02)
        assert t2 == pytest.approx(4 * t1)

    def test_validation(self):
        with pytest.raises(ModelError):
            DeviceSparseModel(arch=GTX_980, simd_efficiency=0.0)
        with pytest.raises(ModelError):
            DeviceSparseModel(arch=GTX_980).sparse_seconds(0, 1, 1, 0.1)
        with pytest.raises(ModelError):
            DeviceSparseModel(arch=GTX_980).sparse_seconds(1, 1, 1, 2.0)


class TestDeviceCrossover:
    @pytest.mark.parametrize("arch", ALL_GPUS, ids=lambda a: a.name)
    def test_crossover_exists_and_is_small(self, arch):
        d_star = device_density_crossover(arch)
        # On every modeled GPU sparse only wins in the rare-variant
        # regime (single-digit percent MAF).
        assert 0.01 < d_star < 0.12

    def test_device_crossover_comparable_to_host(self):
        # Device and host models agree on the regime: a few percent
        # MAF, never a common-variant win -- the quantitative core of
        # why the paper could defer sparse support.
        host = density_crossover()
        for arch in ALL_GPUS:
            device = device_density_crossover(arch)
            assert 0.5 * host < device < 2.0 * host

    def test_alu_rich_devices_tolerate_sparsity_better(self):
        # Maxwell's 32-lane ALU clusters make index matches relatively
        # cheaper than on ALU-lean Vega (16 lanes, already saturated
        # by the dense kernel).
        assert device_density_crossover(GTX_980) > device_density_crossover(VEGA_64)

    def test_crossover_decision_consistent(self):
        arch = VEGA_64
        model = DeviceSparseModel(arch=arch)
        d_star = device_density_crossover(arch, model)
        dense = model.dense_seconds(64, 64, 10_000)
        assert model.sparse_seconds(64, 64, 10_000, d_star * 0.8) < dense
        assert model.sparse_seconds(64, 64, 10_000, d_star * 1.2) > dense

    def test_better_simd_efficiency_raises_crossover(self):
        loose = device_density_crossover(
            GTX_980, DeviceSparseModel(arch=GTX_980, simd_efficiency=0.1)
        )
        tight = device_density_crossover(
            GTX_980, DeviceSparseModel(arch=GTX_980, simd_efficiency=0.5)
        )
        assert tight > loose

    def test_model_arch_mismatch_rejected(self):
        with pytest.raises(ModelError):
            device_density_crossover(GTX_980, DeviceSparseModel(arch=TITAN_V))
