"""Tests for repro.io_stream and the streaming workloads built on it.

Covers the ``.snpbin`` format (round-trips, header/size validation,
corruption rejection), the chunk-source adapters, the double-buffered
prefetch executor (ordering, accounting, error propagation), bit-exact
equivalence of chunked execution against the in-memory paths for all
three workloads (property-tested over chunk sizes, including 1 and
larger than the input), and the per-chunk resilience retry rung.
"""

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.identity import identity_search
from repro.core.ld import linkage_disequilibrium
from repro.core.mixture import mixture_analysis
from repro.core.streaming import (
    StreamingIdentitySearch,
    StreamingLD,
    StreamingMixture,
)
from repro.errors import AllocationError, DatasetError
from repro.io_stream import (
    ArraySource,
    ChunkStream,
    IteratorSource,
    NpzSource,
    PackedDatasetReader,
    PackedDatasetWriter,
    SNPBIN_MAGIC,
    SnpbinSource,
    as_chunk_source,
    materialize_source,
    open_source,
    write_snpbin,
)
from repro.io_stream.format import SNPBIN2_HEADER_BYTES, SNPBIN_HEADER_BYTES
from repro.observability.tracer import Tracer, set_tracer
from repro.resilience import RetryPolicy, resilient
from repro.snp.dataset import SNPDataset
from repro.snp.forensic import ForensicDatabase
from repro.snp.io import save_database_npz, save_dataset_npz


def _random_bits(rows, sites, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(rows, sites), dtype=np.uint8)


@pytest.fixture
def tracer():
    """Install a fresh process tracer for one test."""
    t = Tracer()
    previous = set_tracer(t)
    yield t
    set_tracer(previous)


# -- .snpbin format ------------------------------------------------------------


class TestSnpbinFormat:
    @pytest.mark.parametrize("shape", [(1, 1), (7, 64), (13, 100), (50, 7)])
    def test_roundtrip_exact(self, tmp_path, shape):
        bits = _random_bits(*shape, seed=shape[0])
        path = tmp_path / "m.snpbin"
        assert write_snpbin(path, bits) == shape[0]
        with PackedDatasetReader(path) as reader:
            assert reader.n_rows == shape[0]
            assert reader.n_bits == shape[1]
            assert (reader.read_bits(0, reader.n_rows) == bits).all()

    @pytest.mark.parametrize("word_bits", [8, 16, 32, 64])
    def test_word_bits_variants(self, tmp_path, word_bits):
        bits = _random_bits(9, 45, seed=word_bits)
        path = tmp_path / "w.snpbin"
        write_snpbin(path, bits, word_bits=word_bits)
        with PackedDatasetReader(path) as reader:
            assert reader.word_bits == word_bits
            assert (reader.read_bits(0, 9) == bits).all()

    def test_chunked_writes_match_single_write(self, tmp_path):
        bits = _random_bits(23, 70, seed=5)
        whole = tmp_path / "whole.snpbin"
        chunked = tmp_path / "chunked.snpbin"
        write_snpbin(whole, bits)
        with PackedDatasetWriter(chunked) as writer:
            writer.append(bits[:10])
            writer.append(bits[10:17])
            writer.append(bits[17:])
        assert whole.read_bytes() == chunked.read_bytes()

    def test_empty_matrix(self, tmp_path):
        path = tmp_path / "empty.snpbin"
        write_snpbin(path, np.zeros((0, 12), dtype=np.uint8))
        with PackedDatasetReader(path) as reader:
            assert reader.n_rows == 0
            assert reader.read_bits(0, 0).shape == (0, 12)

    def test_partial_reads_and_clamping(self, tmp_path):
        bits = _random_bits(10, 33, seed=2)
        path = tmp_path / "p.snpbin"
        write_snpbin(path, bits)
        with PackedDatasetReader(path) as reader:
            assert (reader.read_bits(3, 7) == bits[3:7]).all()
            # stop beyond the end clamps.
            assert (reader.read_bits(8, 99) == bits[8:]).all()
            with pytest.raises(DatasetError):
                reader.read_bits(-1, 2)
            with pytest.raises(DatasetError):
                reader.read_bits(5, 2)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.snpbin"
        write_snpbin(path, _random_bits(3, 8))
        raw = bytearray(path.read_bytes())
        raw[:8] = b"NOTSNP00"
        path.write_bytes(bytes(raw))
        with pytest.raises(DatasetError, match="magic"):
            PackedDatasetReader(path)

    def test_reserved_flags_rejected(self, tmp_path):
        path = tmp_path / "flags.snpbin"
        write_snpbin(path, _random_bits(3, 8), version=1)
        raw = bytearray(path.read_bytes())
        raw[12] = 1  # v1 reserved field must be zero
        path.write_bytes(bytes(raw))
        with pytest.raises(DatasetError, match="flags"):
            PackedDatasetReader(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "trunc.snpbin"
        write_snpbin(path, _random_bits(5, 64))
        raw = path.read_bytes()
        path.write_bytes(raw[:-4])
        with pytest.raises(DatasetError, match="truncated or corrupt"):
            PackedDatasetReader(path)

    def test_trailing_garbage_rejected(self, tmp_path):
        path = tmp_path / "extra.snpbin"
        write_snpbin(path, _random_bits(5, 64))
        path.write_bytes(path.read_bytes() + b"\0\0\0")
        with pytest.raises(DatasetError, match="truncated or corrupt"):
            PackedDatasetReader(path)

    def test_header_shorter_than_fixed_size_rejected(self, tmp_path):
        path = tmp_path / "short.snpbin"
        path.write_bytes(SNPBIN_MAGIC)  # 8 of 32 header bytes
        with pytest.raises(DatasetError, match="too short"):
            PackedDatasetReader(path)

    def test_missing_file_wrapped(self, tmp_path):
        with pytest.raises(DatasetError, match="no such file"):
            PackedDatasetReader(tmp_path / "nope.snpbin")

    def test_writer_validation(self, tmp_path):
        path = tmp_path / "v.snpbin"
        with pytest.raises(DatasetError, match="word_bits"):
            PackedDatasetWriter(path, word_bits=12)
        writer = PackedDatasetWriter(path)
        writer.append(_random_bits(2, 10))
        with pytest.raises(DatasetError, match="sites"):
            writer.append(_random_bits(2, 11))
        with pytest.raises(DatasetError, match="2-D"):
            writer.append(np.zeros(5, dtype=np.uint8))
        writer.close()
        with pytest.raises(DatasetError, match="closed"):
            writer.append(_random_bits(1, 10))

    def test_file_size_matches_header_math(self, tmp_path):
        path = tmp_path / "sz.snpbin"
        write_snpbin(path, _random_bits(11, 100), word_bits=64, version=1)
        with PackedDatasetReader(path) as reader:
            k_words = (100 + 63) // 64
            assert reader.header.row_bytes == k_words * 8
            assert reader.bytes_for_rows(11) == 11 * k_words * 8
            expected = SNPBIN_HEADER_BYTES + reader.bytes_for_rows(11)
            assert path.stat().st_size == expected

    def test_v2_file_size_matches_header_math(self, tmp_path):
        path = tmp_path / "sz2.snpbin"
        write_snpbin(
            path, _random_bits(11, 100), word_bits=64, crc_chunk_rows=4
        )
        with PackedDatasetReader(path) as reader:
            assert reader.version == 2
            assert reader.header.n_chunks == 3  # ceil(11 / 4)
            expected = (
                SNPBIN2_HEADER_BYTES
                + reader.bytes_for_rows(11)
                + 3 * 4  # trailing CRC table
            )
            assert reader.header.file_bytes == expected
            assert path.stat().st_size == expected


# -- chunk sources -------------------------------------------------------------


class TestChunkSources:
    def test_array_source(self):
        bits = _random_bits(12, 9)
        src = ArraySource(bits)
        assert src.n_rows == 12 and src.n_sites == 9
        assert (src.read(4, 8) == bits[4:8]).all()
        chunks = list(src.chunks(5))
        assert [c.shape[0] for c in chunks] == [5, 5, 2]
        assert (np.vstack(chunks) == bits).all()

    def test_snpbin_source_reports_packed_bytes(self, tmp_path):
        bits = _random_bits(8, 128)
        path = tmp_path / "s.snpbin"
        write_snpbin(path, bits)
        with SnpbinSource(path) as src:
            chunk = src.read(0, 8)
            assert (chunk == bits).all()
            # Accounting reflects on-disk packed bytes, not the 8x
            # larger unpacked working set.
            assert src.chunk_nbytes(chunk) == 8 * (128 // 64) * 8
            assert src.chunk_nbytes(chunk) < chunk.nbytes

    def test_npz_source_dataset_and_database(self, tmp_path):
        bits = _random_bits(6, 20)
        ds_path = tmp_path / "ds.npz"
        save_dataset_npz(ds_path, SNPDataset(matrix=bits))
        with NpzSource(ds_path) as src:
            assert (src.read(0, 6) == bits).all()
        db_path = tmp_path / "db.npz"
        save_database_npz(
            db_path,
            ForensicDatabase(profiles=bits, frequencies=bits.mean(axis=0)),
        )
        with NpzSource(db_path) as src:
            assert src.n_rows == 6
            assert (src.read(2, 4) == bits[2:4]).all()

    def test_iterator_source_reslices_batches(self):
        bits = _random_bits(17, 6)
        # Feed batching (4/1/9/3) must not leak into chunk boundaries.
        batches = [bits[:4], bits[4:5], bits[5:14], bits[14:]]
        src = IteratorSource(batches)
        chunks = list(src.chunks(6))
        assert [c.shape[0] for c in chunks] == [6, 6, 5]
        assert (np.vstack(chunks) == bits).all()
        assert src.n_rows == 17  # known once exhausted

    def test_iterator_source_is_one_shot(self):
        src = IteratorSource([_random_bits(4, 3)])
        list(src.chunks(2))
        with pytest.raises(DatasetError, match="one-shot"):
            list(src.chunks(2))
        with pytest.raises(DatasetError, match="not seekable"):
            src.read(0, 2)

    def test_iterator_source_validates_widths(self):
        src = IteratorSource([_random_bits(2, 4), _random_bits(2, 5)])
        with pytest.raises(DatasetError, match="sites"):
            list(src.chunks(2))
        with pytest.raises(DatasetError, match="n_sites unknown"):
            IteratorSource([]).n_sites

    def test_as_chunk_source_dispatch(self, tmp_path):
        bits = _random_bits(4, 8)
        assert isinstance(as_chunk_source(bits), ArraySource)
        existing = ArraySource(bits)
        assert as_chunk_source(existing) is existing
        path = tmp_path / "d.snpbin"
        write_snpbin(path, bits)
        src = as_chunk_source(str(path))
        assert isinstance(src, SnpbinSource)
        src.close()
        assert isinstance(as_chunk_source(iter([bits])), IteratorSource)
        with pytest.raises(DatasetError, match="cannot adapt"):
            as_chunk_source(42)

    def test_open_source_suffix_dispatch(self, tmp_path):
        with pytest.raises(DatasetError, match="unsupported input format"):
            open_source(tmp_path / "x.csv")

    def test_materialize_spools_one_shot_feed(self, tmp_path):
        bits = _random_bits(15, 40, seed=3)
        feed = IteratorSource([bits[:7], bits[7:]])
        spooled = materialize_source(feed, tmp_path / "spool.snpbin", chunk_rows=4)
        assert spooled.seekable
        assert spooled.n_rows == 15
        assert (spooled.read(0, 15) == bits).all()
        assert (spooled.read(11, 15) == bits[11:]).all()
        spooled.close()

    def test_chunk_rows_validated(self):
        src = ArraySource(_random_bits(4, 4))
        with pytest.raises(DatasetError, match="positive"):
            list(src.chunks(0))


# -- prefetch executor ---------------------------------------------------------


class _ExplodingSource(ArraySource):
    """Raises on the second read to exercise producer error paths."""

    def __init__(self, matrix, fail_at=1):
        super().__init__(matrix)
        self._reads = 0
        self._fail_at = fail_at

    def read(self, start, stop):
        if self._reads == self._fail_at:
            raise OSError("disk went away")
        self._reads += 1
        return super().read(start, stop)


class TestChunkStream:
    @pytest.mark.parametrize("prefetch", [True, False])
    def test_yields_all_chunks_in_order(self, prefetch):
        bits = _random_bits(31, 10, seed=7)
        stream = ChunkStream(ArraySource(bits), chunk_rows=8, prefetch=prefetch)
        chunks = list(stream)
        assert [c.shape[0] for c in chunks] == [8, 8, 8, 7]
        assert (np.vstack(chunks) == bits).all()
        assert stream.stats.chunks == 4
        assert stream.stats.bytes_read == bits.nbytes

    def test_sync_mode_stall_equals_read(self):
        bits = _random_bits(20, 10)
        stream = ChunkStream(ArraySource(bits), chunk_rows=5, prefetch=False)
        list(stream)
        assert stream.stats.stall_s == pytest.approx(stream.stats.read_s)
        assert stream.stats.stall_fraction == pytest.approx(1.0)

    def test_prepare_runs_on_producer(self):
        bits = _random_bits(10, 4)
        stream = ChunkStream(
            ArraySource(bits), chunk_rows=4, prepare=lambda c: c.sum()
        )
        assert sum(stream) == bits.sum()

    def test_producer_error_propagates(self):
        stream = ChunkStream(
            _ExplodingSource(_random_bits(20, 6), fail_at=1), chunk_rows=5
        )
        with pytest.raises(OSError, match="disk went away"):
            list(stream)

    def test_one_shot(self):
        stream = ChunkStream(ArraySource(_random_bits(4, 4)), chunk_rows=2)
        list(stream)
        with pytest.raises(DatasetError, match="already consumed"):
            iter(stream)

    def test_chunk_rows_validated(self):
        with pytest.raises(DatasetError, match="positive"):
            ChunkStream(ArraySource(_random_bits(4, 4)), chunk_rows=0)

    def test_early_close_stops_producer(self):
        stream = ChunkStream(ArraySource(_random_bits(100, 8)), chunk_rows=1)
        it = iter(stream)
        next(it)
        stream.close()
        assert stream._thread is None

    def test_exact_counters_recorded(self, tracer, tmp_path):
        bits = _random_bits(20, 128, seed=9)
        path = tmp_path / "c.snpbin"
        write_snpbin(path, bits)
        with SnpbinSource(path) as src:
            list(ChunkStream(src, chunk_rows=6))
        counters = tracer.counters.snapshot()
        assert counters["stream.chunks"] == 4
        # 20 rows x 2 packed 64-bit words -- deterministic I/O volume.
        assert counters["stream.bytes_read"] == 20 * 2 * 8
        assert counters["stream.read_s"] > 0


# -- chunked-vs-in-memory equivalence ------------------------------------------


LD_BITS = _random_bits(42, 96, seed=21)
DB_BITS = _random_bits(60, 96, seed=22)
QUERY_BITS = _random_bits(3, 96, seed=23)
MIX_BITS = _random_bits(2, 96, seed=24)


class TestChunkedEquivalence:
    """Chunked execution is bit-exact for any chunking (incl. 1 and > n)."""

    @settings(max_examples=8, deadline=None)
    @given(chunk_rows=st.integers(1, 60))
    def test_ld_bit_exact(self, chunk_rows):
        expected = linkage_disequilibrium(LD_BITS, compare="samples")
        result = StreamingLD().run(LD_BITS, chunk_rows)
        assert (result.counts == expected.counts).all()
        assert np.array_equal(result.frequencies, expected.frequencies)
        assert result.n_observations == expected.n_observations

    @settings(max_examples=8, deadline=None)
    @given(chunk_rows=st.integers(1, 80))
    def test_mixture_bit_exact(self, chunk_rows):
        expected = mixture_analysis(DB_BITS, MIX_BITS)
        streamer = StreamingMixture(MIX_BITS)
        streamer.consume(DB_BITS, chunk_rows)
        result = streamer.result()
        assert (result.scores == expected.scores).all()
        assert result.prenegated == expected.prenegated

    @settings(max_examples=8, deadline=None)
    @given(chunk_rows=st.integers(1, 80))
    def test_identity_topk_bit_exact(self, chunk_rows):
        k = 6
        full = identity_search(QUERY_BITS, DB_BITS).distances
        search = StreamingIdentitySearch(QUERY_BITS, k=k)
        search.consume(DB_BITS, chunk_rows)
        for qi in range(QUERY_BITS.shape[0]):
            order = np.lexsort((np.arange(DB_BITS.shape[0]), full[qi]))[:k]
            got = [(m.distance, m.database_index) for m in search.matches(qi)]
            assert got == [(int(full[qi, i]), int(i)) for i in order]

    @settings(max_examples=6, deadline=None)
    @given(chunk_rows=st.integers(1, 40))
    def test_identity_ties_first_seen_wins(self, chunk_rows):
        # A database of *duplicated* rows: every distance ties, so the
        # retained candidates are decided purely by tie-breaking, which
        # must stay database order (first seen) for any chunking.
        row = _random_bits(1, 64, seed=31)
        db = np.repeat(row, 30, axis=0)
        queries = _random_bits(2, 64, seed=32)
        search = StreamingIdentitySearch(queries, k=4)
        search.consume(db, chunk_rows)
        for qi in range(2):
            assert [m.database_index for m in search.matches(qi)] == [0, 1, 2, 3]

    def test_ld_from_snpbin_file(self, tmp_path):
        path = tmp_path / "pop.snpbin"
        write_snpbin(path, LD_BITS)
        expected = linkage_disequilibrium(LD_BITS, compare="samples")
        with open_source(path) as source:
            result = StreamingLD().run(source, chunk_rows=10)
        assert (result.counts == expected.counts).all()

    def test_ld_spools_one_shot_feeds(self):
        feed = IteratorSource([LD_BITS[:15], LD_BITS[15:]])
        expected = linkage_disequilibrium(LD_BITS, compare="samples")
        result = StreamingLD().run(feed, chunk_rows=13)
        assert (result.counts == expected.counts).all()

    def test_merged_report_covers_all_chunks(self):
        result = StreamingLD().run(LD_BITS, chunk_rows=10)
        # 5 diagonal blocks + 4+3+2+1 off-diagonal blocks = 15 runs.
        assert result.report.n_kernel_launches >= 15
        assert result.report.end_to_end_s > 0
        assert result.report.m == LD_BITS.shape[0]


# -- per-chunk resilience ------------------------------------------------------


class _FlakyFramework:
    """Delegating framework that fails the first N run() calls."""

    def __init__(self, inner, failures):
        self._inner = inner
        self._failures = failures

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def run(self, *args, **kwargs):
        if self._failures:
            self._failures -= 1
            raise AllocationError("injected transient allocation fault")
        return self._inner.run(*args, **kwargs)


class TestChunkRetry:
    def test_transient_chunk_fault_retried_to_bit_exact(self, tracer):
        from repro.core.config import Algorithm
        from repro.core.framework import SNPComparisonFramework

        inner = SNPComparisonFramework("Titan V", Algorithm.FASTID_MIXTURE)
        streamer = StreamingMixture(
            MIX_BITS, framework=_FlakyFramework(inner, failures=2)
        )
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)
        with resilient(policy=policy):
            streamer.consume(DB_BITS, chunk_rows=25)
        expected = mixture_analysis(DB_BITS, MIX_BITS)
        assert (streamer.result().scores == expected.scores).all()
        assert tracer.counters.snapshot()["stream.chunk_retries"] == 2

    def test_exhausted_retries_propagate(self):
        from repro.core.config import Algorithm
        from repro.core.framework import SNPComparisonFramework

        inner = SNPComparisonFramework("Titan V", Algorithm.FASTID_MIXTURE)
        streamer = StreamingMixture(
            MIX_BITS, framework=_FlakyFramework(inner, failures=99)
        )
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0)
        with resilient(policy=policy):
            with pytest.raises(AllocationError):
                streamer.consume(DB_BITS, chunk_rows=25)

    def test_no_policy_means_single_attempt(self):
        from repro.core.config import Algorithm
        from repro.core.framework import SNPComparisonFramework

        inner = SNPComparisonFramework("Titan V", Algorithm.FASTID_MIXTURE)
        flaky = _FlakyFramework(inner, failures=1)
        streamer = StreamingMixture(MIX_BITS, framework=flaky)
        with pytest.raises(AllocationError):
            streamer.consume(DB_BITS, chunk_rows=25)
