"""Tests for repro.snp.ld_decay."""

import numpy as np
import pytest

from repro.core.ld import linkage_disequilibrium
from repro.errors import DatasetError
from repro.snp.generator import PopulationModel, generate_population
from repro.snp.ld_decay import (
    DecayCurve,
    detect_blocks,
    half_decay_distance,
    ld_decay_curve,
)
from repro.snp.stats import ld_r_squared


@pytest.fixture(scope="module")
def blocked_r2():
    ds = generate_population(
        PopulationModel(
            n_samples=600, n_sites=120, block_size=12, founders_per_block=3,
            maf_alpha=5.0, maf_beta=5.0, recombination_noise=0.0,
        ),
        rng=0,
    )
    return ld_r_squared(ds.matrix.T)


class TestDecayCurve:
    def test_basic_shape(self, blocked_r2):
        curve = ld_decay_curve(blocked_r2)
        assert curve.distances[0] == 1
        assert curve.distances[-1] == 119
        assert (curve.pair_counts > 0).all()

    def test_pair_counts_exact(self):
        ld = np.eye(5)
        curve = ld_decay_curve(ld)
        # Distance d has 5-d pairs.
        assert curve.pair_counts.tolist() == [4, 3, 2, 1]

    def test_decays_with_distance_in_blocked_population(self, blocked_r2):
        curve = ld_decay_curve(blocked_r2, max_distance=40)
        short = curve.mean_ld[curve.distances <= 4].mean()
        long = curve.mean_ld[curve.distances >= 20].mean()
        assert short > long + 0.05

    def test_custom_positions(self):
        ld = np.array([[1.0, 0.5], [0.5, 1.0]])
        curve = ld_decay_curve(ld, positions=np.array([100, 400]))
        assert curve.distances.tolist() == [300]
        assert curve.mean_ld[0] == 0.5

    def test_max_distance_truncates(self, blocked_r2):
        curve = ld_decay_curve(blocked_r2, max_distance=10)
        assert curve.distances.max() <= 10

    def test_empty_and_single_site(self):
        assert ld_decay_curve(np.zeros((1, 1))).distances.size == 0
        assert ld_decay_curve(np.zeros((0, 0))).distances.size == 0

    def test_validation(self):
        with pytest.raises(DatasetError):
            ld_decay_curve(np.zeros((2, 3)))
        with pytest.raises(DatasetError):
            ld_decay_curve(np.zeros((3, 3)), positions=np.array([3, 2, 1]))
        with pytest.raises(DatasetError):
            ld_decay_curve(np.zeros((3, 3)), positions=np.array([1, 2]))
        with pytest.raises(DatasetError):
            DecayCurve(
                distances=np.zeros(2), mean_ld=np.zeros(3),
                pair_counts=np.zeros(2),
            )


class TestHalfDecay:
    def test_half_distance_within_block_scale(self, blocked_r2):
        curve = ld_decay_curve(blocked_r2)
        half = half_decay_distance(curve)
        # LD halves somewhere on the block length scale (12 sites).
        assert half is not None
        assert 1 <= half <= 24

    def test_no_decay_returns_none(self):
        ld = np.ones((6, 6))
        assert half_decay_distance(ld_decay_curve(ld)) is None

    def test_empty_curve(self):
        assert half_decay_distance(ld_decay_curve(np.zeros((1, 1)))) is None


class TestDetectBlocks:
    def test_recovers_planted_blocks(self, blocked_r2):
        blocks = detect_blocks(blocked_r2)
        boundaries = {stop for _, stop in blocks[:-1]}
        planted = set(range(12, 120, 12))
        # Most planted boundaries recovered within one site of truth
        # (windowed scores smear by up to one position); few spurious.
        hits = sum(
            1 for b in boundaries if min(abs(b - p) for p in planted) <= 1
        )
        spurious = sum(
            1 for b in boundaries if min(abs(b - p) for p in planted) > 1
        )
        assert hits >= 6
        assert spurious <= 4

    def test_blocks_partition_sites(self, blocked_r2):
        blocks = detect_blocks(blocked_r2)
        covered = [i for s, e in blocks for i in range(s, e)]
        assert covered == list(range(blocked_r2.shape[0]))

    def test_uniform_ld_single_block(self):
        ld = np.ones((8, 8))
        assert detect_blocks(ld, threshold=0.5) == [(0, 8)]

    def test_degenerate_sizes(self):
        assert detect_blocks(np.zeros((0, 0))) == []
        assert detect_blocks(np.ones((1, 1))) == [(0, 1)]

    def test_framework_integration(self):
        # The decay analysis consumes the GPU framework's LD output.
        ds = generate_population(
            PopulationModel(200, 60, block_size=10, founders_per_block=2,
                            maf_alpha=4.0, maf_beta=4.0), rng=1
        )
        result = linkage_disequilibrium(ds, device="GTX 980", compare="sites")
        curve = ld_decay_curve(result.r_squared)
        assert curve.mean_ld[0] > curve.mean_ld[-1]
