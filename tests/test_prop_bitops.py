"""Property-based tests for the bit-manipulation primitives."""

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.util.bitops import (
    pack_bits,
    popcount,
    popcount_native,
    popcount_table,
    unpack_bits,
    words_needed,
    HAS_NATIVE_POPCOUNT,
)

bit_matrices = hnp.arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(0, 12), st.integers(0, 150)),
    elements=st.integers(0, 1),
)

word_arrays_u32 = hnp.arrays(
    dtype=np.uint32,
    shape=st.integers(0, 64),
    elements=st.integers(0, 2**32 - 1),
)

word_arrays_u64 = hnp.arrays(
    dtype=np.uint64,
    shape=st.integers(0, 64),
    elements=st.integers(0, 2**64 - 1),
)


class TestPopcountProperties:
    @given(word_arrays_u32)
    def test_table_equals_native_u32(self, words):
        if HAS_NATIVE_POPCOUNT:
            assert (popcount_table(words) == popcount_native(words)).all()

    @given(word_arrays_u64)
    def test_table_equals_native_u64(self, words):
        if HAS_NATIVE_POPCOUNT:
            assert (popcount_table(words) == popcount_native(words)).all()

    @given(word_arrays_u32)
    def test_popcount_bounds(self, words):
        counts = popcount(words)
        assert (counts >= 0).all()
        assert (counts <= 32).all()

    @given(word_arrays_u32)
    def test_popcount_of_complement(self, words):
        assert (popcount(words) + popcount(~words) == 32).all()

    @given(word_arrays_u32, word_arrays_u32)
    def test_and_xor_decomposition(self, a, b):
        """popc(a) + popc(b) == popc(a & b) * 2 + popc(a ^ b)."""
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        lhs = popcount(a) + popcount(b)
        rhs = 2 * popcount(a & b) + popcount(a ^ b)
        assert (lhs == rhs).all()


class TestPackProperties:
    @settings(max_examples=60)
    @given(bit_matrices, st.sampled_from([8, 16, 32, 64]))
    def test_roundtrip(self, bits, word_bits):
        packed = pack_bits(bits, word_bits)
        assert packed.shape == (bits.shape[0], words_needed(bits.shape[1], word_bits))
        recovered = unpack_bits(packed, bits.shape[1]) if bits.shape[1] else bits
        assert (recovered == bits).all()

    @settings(max_examples=60)
    @given(bit_matrices)
    def test_popcount_invariant(self, bits):
        packed = pack_bits(bits, 32)
        row_counts = popcount(packed).sum(axis=1) if packed.size else np.zeros(bits.shape[0])
        assert (row_counts == bits.sum(axis=1)).all()

    @settings(max_examples=40)
    @given(bit_matrices)
    def test_packing_linear_in_or(self, bits):
        """pack(a) | pack(b) == pack(a | b) for aligned matrices."""
        if bits.shape[0] < 2:
            return
        a, b = bits[:1], bits[1:2]
        pa, pb = pack_bits(a, 32), pack_bits(b, 32)
        pab = pack_bits(np.bitwise_or(a, b), 32)
        assert (np.bitwise_or(pa, pb) == pab).all()
