"""Tests for repro.util validation, timing, units and table rendering."""

import time

import numpy as np
import pytest

from repro.util.tables import render_kv, render_table
from repro.util.timing import Interval, Stopwatch, TimeLine
from repro.util.units import (
    format_bytes,
    format_count,
    format_ops,
    format_percent,
    format_seconds,
    gib,
    kib,
    mib,
)
from repro.util.validation import (
    check_choice,
    check_dtype,
    check_in_range,
    check_multiple,
    check_nonnegative,
    check_positive,
    check_power_of_two,
)


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)

    def test_check_nonnegative(self):
        check_nonnegative("x", 0)
        with pytest.raises(ValueError):
            check_nonnegative("x", -1)

    @pytest.mark.parametrize("good", [1, 2, 4, 1024])
    def test_power_of_two_accepts(self, good):
        check_power_of_two("x", good)

    @pytest.mark.parametrize("bad", [0, 3, 6, -4])
    def test_power_of_two_rejects(self, bad):
        with pytest.raises(ValueError):
            check_power_of_two("x", bad)

    def test_check_multiple(self):
        check_multiple("x", 12, 4)
        with pytest.raises(ValueError):
            check_multiple("x", 10, 4)
        with pytest.raises(ValueError):
            check_multiple("x", 4, 0)

    def test_check_in_range(self):
        check_in_range("x", 5, 0, 10)
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)

    def test_check_dtype(self):
        check_dtype("a", np.zeros(2, dtype=np.uint32), [np.uint32, np.uint64])
        with pytest.raises(TypeError):
            check_dtype("a", np.zeros(2, dtype=np.int32), [np.uint32])

    def test_check_choice(self):
        check_choice("mode", "fast", ("fast", "slow"))
        with pytest.raises(ValueError):
            check_choice("mode", "medium", ("fast", "slow"))


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        first = sw.elapsed
        with sw:
            time.sleep(0.01)
        assert sw.elapsed > first > 0

    def test_double_start_rejected(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0


class TestTimeLine:
    def test_in_order_scheduling(self):
        tl = TimeLine("compute")
        a = tl.schedule("a", earliest_start=0.0, duration=1.0)
        b = tl.schedule("b", earliest_start=0.0, duration=2.0)
        assert a.end == 1.0
        assert b.start == 1.0 and b.end == 3.0
        assert tl.now == 3.0

    def test_gap_respected(self):
        tl = TimeLine("t")
        tl.schedule("a", 0.0, 1.0)
        b = tl.schedule("b", 5.0, 1.0)
        assert b.start == 5.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TimeLine("t").schedule("a", 0.0, -1.0)

    def test_busy_time_and_utilization(self):
        tl = TimeLine("t")
        tl.schedule("a", 0.0, 1.0)
        tl.schedule("b", 3.0, 1.0)
        assert tl.busy_time() == 2.0
        assert tl.utilization() == pytest.approx(0.5)

    def test_empty_timeline(self):
        tl = TimeLine("t")
        assert tl.now == 0.0
        assert tl.utilization() == 0.0

    def test_interval_overlap(self):
        a = Interval("a", 0.0, 2.0)
        b = Interval("b", 1.0, 3.0)
        c = Interval("c", 2.0, 4.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # half-open intervals touch, not overlap
        assert a.duration == 2.0


class TestUnits:
    def test_binary_sizes(self):
        assert kib(1) == 1024
        assert mib(2) == 2 * 1024**2
        assert gib(1) == 1024**3

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(1536) == "1.50 KiB"
        assert "GiB" in format_bytes(3 * gib(1))

    def test_format_count(self):
        assert format_count(18_000_000) == "18.0 M"
        assert format_count(5) == "5"

    def test_format_ops(self):
        assert format_ops(1.86e12) == "1.86 Tops/s"
        assert format_ops(700e9) == "700.00 Gops/s"

    def test_format_seconds(self):
        assert format_seconds(0) == "0 s"
        assert format_seconds(1.5) == "1.500 s"
        assert format_seconds(0.0025) == "2.500 ms"
        assert format_seconds(3e-6) == "3.000 us"
        assert "ns" in format_seconds(5e-9)

    def test_format_percent(self):
        assert format_percent(0.971) == "97.1%"


class TestRenderTable:
    def test_basic_alignment(self):
        out = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert len({len(line) for line in lines[1:2]}) == 1

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"
        assert out.splitlines()[1] == "========"

    def test_none_rendered_as_dash(self):
        out = render_table(["x"], [[None]])
        assert "-" in out.splitlines()[-1]

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_render_kv(self):
        out = render_kv([("alpha", 1), ("b", None)], title="T")
        assert "alpha : 1" in out
        assert "b     : -" in out
