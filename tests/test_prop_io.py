"""Property-based round-trip tests for every persistence format."""

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.snp.dataset import SNPDataset
from repro.snp.io import (
    load_dataset_npz,
    read_snptxt,
    save_dataset_npz,
    write_snptxt,
)
from repro.snp.vcf import read_vcf, write_vcf

bit_matrices = hnp.arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(1, 10), st.integers(0, 40)),
    elements=st.integers(0, 1),
)

# Identifier alphabet safe for all three text formats.
ids = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=8,
)


@st.composite
def datasets(draw):
    matrix = draw(bit_matrices)
    n_samples, n_sites = matrix.shape
    sample_ids = draw(
        st.lists(ids, min_size=n_samples, max_size=n_samples, unique=True)
    )
    site_ids = draw(st.lists(ids, min_size=n_sites, max_size=n_sites, unique=True))
    return SNPDataset(matrix=matrix, sample_ids=sample_ids, site_ids=site_ids)


class TestRoundTrips:
    @settings(max_examples=30, deadline=None)
    @given(datasets())
    def test_npz(self, tmp_path_factory, dataset):
        path = tmp_path_factory.mktemp("npz") / "d.npz"
        save_dataset_npz(path, dataset)
        loaded = load_dataset_npz(path)
        assert (loaded.matrix == dataset.matrix).all()
        assert loaded.sample_ids == dataset.sample_ids
        assert loaded.site_ids == dataset.site_ids

    @settings(max_examples=30, deadline=None)
    @given(datasets())
    def test_snptxt(self, tmp_path_factory, dataset):
        path = tmp_path_factory.mktemp("txt") / "d.snptxt"
        write_snptxt(path, dataset)
        loaded = read_snptxt(path)
        assert (loaded.matrix == dataset.matrix).all()
        assert loaded.sample_ids == dataset.sample_ids
        assert loaded.site_ids == dataset.site_ids

    @settings(max_examples=30, deadline=None)
    @given(datasets())
    def test_vcf(self, tmp_path_factory, dataset):
        path = tmp_path_factory.mktemp("vcf") / "d.vcf"
        write_vcf(path, dataset)
        loaded = read_vcf(path)
        assert (loaded.matrix == dataset.matrix).all()
        assert loaded.sample_ids == dataset.sample_ids
        assert loaded.site_ids == dataset.site_ids

    @settings(max_examples=20, deadline=None)
    @given(datasets())
    def test_format_cross_agreement(self, tmp_path_factory, dataset):
        """All three formats reload to the same dataset."""
        base = tmp_path_factory.mktemp("cross")
        save_dataset_npz(base / "d.npz", dataset)
        write_snptxt(base / "d.snptxt", dataset)
        write_vcf(base / "d.vcf", dataset)
        a = load_dataset_npz(base / "d.npz")
        b = read_snptxt(base / "d.snptxt")
        c = read_vcf(base / "d.vcf")
        assert (a.matrix == b.matrix).all()
        assert (b.matrix == c.matrix).all()
