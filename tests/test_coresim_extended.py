"""Extended core-simulator tests: MEM pipe, mixed programs, edge cases."""

import pytest

from repro.gpu.arch import GTX_980, VEGA_64
from repro.gpu.coresim import CoreSimulator, Program, ProgramInstruction
from repro.gpu.isa import Instruction, PipeClass, pipe_for


class TestMemPipe:
    def test_lds_runs_on_mem_pipe(self):
        assert pipe_for(Instruction.LDS) is PipeClass.MEM
        assert pipe_for(Instruction.LDG) is PipeClass.MEM

    def test_loads_overlap_compute(self):
        # LDS and POPC on separate pipes: interleaving costs no more
        # than the slower stream alone (load/compute overlap -- the
        # latency hiding the kernel's structure relies on).
        sim = CoreSimulator(GTX_980)
        groups = 24
        popc = sim.run(
            Program.independent_stream(Instruction.POPC, 32, 4), groups
        ).cycles
        both = sim.run(
            Program.interleaved_streams((Instruction.LDS, Instruction.POPC), 32, 4),
            groups,
        ).cycles
        assert both <= popc * 1.2

    def test_load_then_compute_dependency(self):
        # popc depending on a load: the chain costs load latency plus
        # popc latency per iteration.
        body = (
            ProgramInstruction(op=Instruction.LDS, carried=True),
            ProgramInstruction(op=Instruction.POPC, deps=(0,)),
        )
        sim = CoreSimulator(GTX_980)
        result = sim.run(Program(body=body, iterations=16), n_groups=1)
        per_iteration = result.cycles / 16
        # Each iteration: LDS result at +6, dependent POPC at +12.
        assert per_iteration == pytest.approx(12.0, rel=0.05)


class TestMixedKernelTrace:
    def test_ld_inner_loop_trace(self):
        """The kernel's inner loop body (LDS, AND, POPC, IADD chain)."""
        body = (
            ProgramInstruction(op=Instruction.LDS),                  # load A
            ProgramInstruction(op=Instruction.AND, deps=(0,)),       # a & b
            ProgramInstruction(op=Instruction.POPC, deps=(1,)),      # popc
            ProgramInstruction(op=Instruction.IADD, deps=(2,), carried=True),
        )
        program = Program(body=body, iterations=8)
        sim = CoreSimulator(GTX_980)
        one_group = sim.run(program, n_groups=1)
        # Serial chain: at least ~3 instruction latencies per iteration
        # (the loop-carried boundary overlaps the head load).
        assert one_group.cycles / 8 >= 3 * GTX_980.l_fn
        # With L_fn groups per cluster the pipes fill and aggregate
        # throughput rises near the POPC bound for this mix.
        saturated = sim.run(program, n_groups=24)
        ipc_one = one_group.instructions_per_cycle()
        ipc_full = saturated.instructions_per_cycle()
        assert ipc_full > ipc_one * 5

    def test_vega_alu_heavy_trace_binds_on_alu(self):
        """On Vega, AND+IADD alone saturate at the ALU width."""
        program = Program.interleaved_streams(
            (Instruction.AND, Instruction.IADD), 32, 4
        )
        sim = CoreSimulator(VEGA_64)
        result = sim.run(program, n_groups=16)
        word_ops_per_cycle = result.dynamic_instructions * VEGA_64.n_t / result.cycles
        assert word_ops_per_cycle / VEGA_64.n_cl == pytest.approx(16, rel=0.05)


class TestEdgeCases:
    def test_single_instruction_program(self):
        sim = CoreSimulator(GTX_980)
        result = sim.run(Program.independent_stream(Instruction.IADD, 1), 1)
        assert result.cycles == GTX_980.l_fn  # one latency, nothing hidden

    def test_iterations_scale_cycles_linearly(self):
        sim = CoreSimulator(GTX_980)
        base = sim.run(Program.dependent_chain(Instruction.POPC, 8, 2), 1).cycles
        double = sim.run(Program.dependent_chain(Instruction.POPC, 8, 4), 1).cycles
        assert double == pytest.approx(2 * base, rel=0.05)

    def test_groups_beyond_saturation_do_not_slow_down(self):
        # Paper: "additional thread groups will not improve throughput"
        # -- and in the simulator they must not *reduce* aggregate
        # throughput either (at cluster-balanced counts).
        sim = CoreSimulator(GTX_980)
        program = Program.independent_stream(Instruction.POPC, 16, 4)
        at_24 = sim.run(program, n_groups=24)
        at_32 = sim.run(program, n_groups=32)
        tp_24 = at_24.dynamic_instructions / at_24.cycles
        tp_32 = at_32.dynamic_instructions / at_32.cycles
        assert tp_32 >= tp_24 * 0.95

    def test_result_metrics_zero_safe(self):
        sim = CoreSimulator(GTX_980)
        result = sim.run(Program(body=(), iterations=3), n_groups=2)
        assert result.cycles_per_instruction() == 0.0
        assert result.instructions_per_cycle() == 0.0
