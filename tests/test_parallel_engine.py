"""Tests for repro.parallel: shard plan, panel cache, parallel engine."""

import numpy as np
import pytest

from repro.blis.blocking import BlockingPlan
from repro.blis.gemm import bit_gemm_reference
from repro.blis.microkernel import ComparisonOp
from repro.cli import main
from repro.core.framework import SNPComparisonFramework
from repro.core.config import Algorithm
from repro.errors import ConfigurationError, PackingError
from repro.gpu.arch import GTX_980
from repro.gpu.executor import execute_kernel
from repro.gpu.kernel import SnpKernel
from repro.multigpu.executor import run_multi_gpu
from repro.multigpu.system import QUAD_GTX980
from repro.parallel import (
    PanelCache,
    ParallelEngine,
    Shard,
    ShardPlan,
    bit_gemm_parallel,
    get_engine,
)
from repro.snp.generator import PopulationModel, generate_population
from repro.snp.io import write_snptxt
from repro.util.bitops import pack_bits

OPS = [ComparisonOp.AND, ComparisonOp.XOR, ComparisonOp.ANDNOT]
WORKERS = [1, 2, 4]
STRATEGIES = ["gemm", "blocked"]


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(7)
    bits_a = (rng.random((53, 517)) < 0.35).astype(np.uint8)
    bits_b = (rng.random((41, 517)) < 0.55).astype(np.uint8)
    return bits_a, bits_b, pack_bits(bits_a, 32), pack_bits(bits_b, 32)


# -- shard plan ----------------------------------------------------------------


def paint_coverage(plan: ShardPlan) -> np.ndarray:
    """Count how many shards claim each output cell."""
    mask = np.zeros((plan.blocking.m, plan.blocking.n), dtype=np.int64)
    for shard in plan.shards:
        m0, m1 = shard.m_range
        n0, n1 = shard.n_range
        mask[m0:m1, n0:n1] += 1
    return mask


class TestShardPlan:
    @pytest.mark.parametrize("workers", WORKERS)
    def test_covers_output_disjointly(self, workers):
        blocking = BlockingPlan(m=37, n=91, k=11, m_c=8, k_c=4, m_r=4, n_r=8)
        plan = ShardPlan.from_blocking(blocking, workers)
        assert (paint_coverage(plan) == 1).all()

    def test_boundaries_aligned_to_micro_tiles(self):
        blocking = BlockingPlan(m=100, n=200, k=7, m_c=16, k_c=4, m_r=4, n_r=8)
        plan = ShardPlan.from_blocking(blocking, 4)
        for shard in plan.shards:
            assert shard.m_range[0] % blocking.m_r == 0
            assert shard.n_range[0] % blocking.n_r == 0
            # Interior shards end on a unit boundary too; only the last
            # band may carry the ragged remainder.
            if shard.m_range[1] != blocking.m:
                assert shard.m_range[1] % blocking.m_r == 0
            if shard.n_range[1] != blocking.n:
                assert shard.n_range[1] % blocking.n_r == 0

    def test_matches_blocking_plan_extents(self):
        blocking = BlockingPlan(m=64, n=128, k=9, m_c=16, k_c=3, m_r=4, n_r=8)
        plan = ShardPlan.from_blocking(blocking, 2)
        assert plan.blocking is blocking
        assert plan.k_panels() == blocking.k_panels()
        assert plan.total_word_ops() == blocking.total_ops()

    def test_tiny_problem_degenerates_to_one_shard(self):
        blocking = BlockingPlan(m=3, n=5, k=2, m_c=8, k_c=4, m_r=4, n_r=8)
        plan = ShardPlan.from_blocking(blocking, 8)
        assert plan.n_shards == 1
        assert plan.shards[0].m_range == (0, 3)
        assert plan.shards[0].n_range == (0, 5)

    def test_oversubscription_bounds_shard_count(self):
        blocking = BlockingPlan(m=512, n=512, k=8, m_c=32, k_c=4, m_r=4, n_r=8)
        plan = ShardPlan.from_blocking(blocking, 4, oversubscribe=2)
        assert 4 <= plan.n_shards <= 4 * 2 * 2

    def test_shard_ids_contiguous(self):
        blocking = BlockingPlan(m=64, n=64, k=4, m_c=16, k_c=2, m_r=4, n_r=8)
        plan = ShardPlan.from_blocking(blocking, 4)
        assert [s.shard_id for s in plan.shards] == list(range(plan.n_shards))

    def test_from_grid_explicit(self):
        blocking = BlockingPlan(m=40, n=80, k=4, m_c=8, k_c=2, m_r=4, n_r=8)
        plan = ShardPlan.from_grid(blocking, 2, 5)
        assert plan.grid_rows == 2 and plan.grid_cols == 5
        assert (paint_coverage(plan) == 1).all()

    def test_word_ops_accounting(self):
        shard = Shard(0, 0, 0, (0, 12), (8, 24))
        assert shard.m_size == 12 and shard.n_size == 16
        assert shard.word_ops(5) == 12 * 16 * 5

    def test_invalid_arguments_rejected(self):
        blocking = BlockingPlan(m=8, n=8, k=2, m_c=4, k_c=2, m_r=4, n_r=4)
        with pytest.raises(ConfigurationError):
            ShardPlan.from_blocking(blocking, 0)
        with pytest.raises(ConfigurationError):
            ShardPlan.from_blocking(blocking, 2, oversubscribe=0)
        with pytest.raises(ConfigurationError):
            ShardPlan.from_grid(blocking, 0, 1)


# -- panel cache ---------------------------------------------------------------


class TestPanelCache:
    def test_hit_miss_accounting(self):
        cache = PanelCache(1 << 20)
        builds = []

        def build():
            builds.append(1)
            return np.ones(8, dtype=np.int64)

        first, hit_first = cache.get_or_build_flag("p", build)
        again, hit_again = cache.get_or_build_flag("p", build)
        assert not hit_first and hit_again
        assert again is first and len(builds) == 1
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.requests == 2 and stats.hit_rate == 0.5

    def test_lru_eviction_within_budget(self):
        panel = np.zeros(16, dtype=np.uint8)  # 16 bytes each
        cache = PanelCache(budget_bytes=40)  # room for two panels
        cache.get_or_build("a", lambda: panel.copy())
        cache.get_or_build("b", lambda: panel.copy())
        cache.get_or_build("a", lambda: panel.copy())  # refresh a
        cache.get_or_build("c", lambda: panel.copy())  # evicts b (LRU)
        assert len(cache) == 2
        _, hit_a = cache.get_or_build_flag("a", lambda: panel.copy())
        _, hit_b = cache.get_or_build_flag("b", lambda: panel.copy())
        assert hit_a and not hit_b
        assert cache.stats().evictions >= 1
        assert cache.stats().current_bytes <= 40

    def test_oversize_panel_bypasses_cache(self):
        cache = PanelCache(budget_bytes=8)
        big = cache.get_or_build("big", lambda: np.zeros(64, dtype=np.uint8))
        assert big.nbytes == 64
        assert len(cache) == 0
        assert cache.stats().oversize == 1

    def test_clear_preserves_accounting(self):
        cache = PanelCache(1 << 20)
        cache.get_or_build("x", lambda: np.ones(4, dtype=np.int64))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().misses == 1
        assert cache.stats().current_bytes == 0

    def test_peak_bytes_tracked(self):
        cache = PanelCache(1 << 20)
        cache.get_or_build("x", lambda: np.zeros(100, dtype=np.uint8))
        assert cache.stats().peak_bytes == 100

    def test_invalid_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            PanelCache(0)


# -- engine: bit-exactness ------------------------------------------------------


class TestEngineBitExact:
    @pytest.mark.parametrize("op", OPS)
    @pytest.mark.parametrize("workers", WORKERS)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_matches_reference(self, operands, op, workers, strategy):
        _, _, pa, pb = operands
        engine = ParallelEngine(workers=workers, strategy=strategy)
        try:
            c, report = engine.run(pa, pb, op, force_parallel=True)
        finally:
            engine.shutdown()
        assert c.dtype == np.int64
        assert (c == bit_gemm_reference(pa, pb, op)).all()
        assert report.used_parallel

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_ragged_extents(self, strategy):
        rng = np.random.default_rng(3)
        bits_a = (rng.random((13, 257)) < 0.5).astype(np.uint8)
        bits_b = (rng.random((29, 257)) < 0.5).astype(np.uint8)
        pa, pb = pack_bits(bits_a, 32), pack_bits(bits_b, 32)
        plan = BlockingPlan(
            m=13, n=29, k=pa.shape[1], m_c=8, k_c=3, m_r=4, n_r=8
        )
        engine = ParallelEngine(workers=2, strategy=strategy)
        try:
            c, _ = engine.run(pa, pb, ComparisonOp.XOR, plan=plan,
                              force_parallel=True)
        finally:
            engine.shutdown()
        assert (c == bit_gemm_reference(pa, pb, ComparisonOp.XOR)).all()

    def test_uint64_operands(self):
        rng = np.random.default_rng(5)
        bits = (rng.random((21, 300)) < 0.5).astype(np.uint8)
        p64 = pack_bits(bits, 64)
        engine = ParallelEngine(workers=2)
        try:
            c, _ = engine.run(p64, p64, ComparisonOp.AND, force_parallel=True)
        finally:
            engine.shutdown()
        assert (c == bit_gemm_reference(p64, p64, ComparisonOp.AND)).all()

    def test_deterministic_across_runs(self, operands):
        _, _, pa, pb = operands
        engine = ParallelEngine(workers=4)
        try:
            first, _ = engine.run(pa, pb, ComparisonOp.XOR, force_parallel=True)
            second, _ = engine.run(pa, pb, ComparisonOp.XOR, force_parallel=True)
        finally:
            engine.shutdown()
        assert (first == second).all()

    def test_convenience_wrapper(self, operands):
        _, _, pa, pb = operands
        c = bit_gemm_parallel(pa, pb, ComparisonOp.ANDNOT, workers=2,
                              force_parallel=True)
        assert (c == bit_gemm_reference(pa, pb, ComparisonOp.ANDNOT)).all()


# -- engine: dispatch, report, cache --------------------------------------------


class TestEngineDispatch:
    def test_single_worker_stays_serial(self, operands):
        _, _, pa, pb = operands
        c, report = ParallelEngine(workers=1).run(pa, pb)
        assert not report.used_parallel
        assert report.strategy.startswith("serial-")
        assert (c == bit_gemm_reference(pa, pb)).all()

    def test_small_problem_below_crossover_stays_serial(self, operands):
        _, _, pa, pb = operands
        # 53 * 41 * 17 word-ops is far below the 2**21 crossover.
        _, report = ParallelEngine(workers=4).run(pa, pb)
        assert not report.used_parallel
        assert report.n_shards == 1

    def test_crossover_threshold_configurable(self, operands):
        _, _, pa, pb = operands
        engine = ParallelEngine(workers=2, crossover_ops=1)
        try:
            _, report = engine.run(pa, pb)
        finally:
            engine.shutdown()
        assert report.used_parallel

    def test_report_accounts_every_output_cell(self, operands):
        _, _, pa, pb = operands
        engine = ParallelEngine(workers=4)
        try:
            _, report = engine.run(pa, pb, force_parallel=True)
        finally:
            engine.shutdown()
        assert report.n_shards == report.shard_plan.n_shards
        assert report.total_word_ops == report.shard_plan.total_word_ops()
        assert (paint_coverage(report.shard_plan) == 1).all()
        assert all(p.seconds >= 0 for p in report.shard_profiles)

    def test_shards_sharing_panels_hit_cache(self, operands):
        _, _, pa, pb = operands
        # A 2x2 (or wider) shard grid shares every A panel across a grid
        # row and every B panel across a grid column, so the second
        # consumer of each panel must hit.
        engine = ParallelEngine(workers=4, oversubscribe=4)
        try:
            _, report = engine.run(pa, pb, force_parallel=True)
        finally:
            engine.shutdown()
        assert report.shard_plan.grid_rows > 1
        if report.executor == "process":
            # Panel caches live inside the worker processes under the
            # process executor (e.g. the REPRO_EXECUTOR=process CI
            # leg); no aggregated parent-side stats are reported.
            assert report.cache_stats is None
            return
        assert report.cache_stats is not None
        assert report.cache_stats.hits > 0
        per_shard = sum(p.cache_hits + p.cache_misses
                        for p in report.shard_profiles)
        assert per_shard == report.cache_stats.requests

    def test_invalid_operands_rejected(self, operands):
        _, _, pa, pb = operands
        engine = ParallelEngine(workers=1)
        with pytest.raises(PackingError):
            engine.run(pa.astype(np.float64), pb)
        with pytest.raises(PackingError):
            engine.run(pa, pb[:, :-1])
        with pytest.raises(PackingError):
            engine.run(pa.ravel(), pb)
        with pytest.raises(PackingError):
            engine.run(pa, pb, plan=BlockingPlan(m=1, n=1, k=1, m_c=4,
                                                 k_c=1, m_r=4, n_r=4))

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelEngine(workers=0)
        with pytest.raises(ConfigurationError):
            ParallelEngine(strategy="magic")

    def test_get_engine_shares_instances(self):
        assert get_engine(2) is get_engine(2)
        assert get_engine(2) is not get_engine(3)


# -- integration: executor, framework, multi-GPU, CLI ---------------------------


@pytest.fixture(scope="module")
def population():
    return generate_population(PopulationModel(60, 160, block_size=16), rng=2)


class TestIntegration:
    def test_execute_kernel_with_workers(self):
        kernel = SnpKernel.compile(
            GTX_980, ComparisonOp.AND, m_c=32, m_r=4, k_c=383, n_r=384,
            grid_rows=4, grid_cols=4,
        )
        rng = np.random.default_rng(11)
        bits_a = (rng.random((40, 300)) < 0.4).astype(np.uint8)
        bits_b = (rng.random((35, 300)) < 0.4).astype(np.uint8)
        pa, pb = pack_bits(bits_a, 32), pack_bits(bits_b, 32)
        serial_c, serial_p = execute_kernel(kernel, pa, pb)
        par_c, par_p = execute_kernel(kernel, pa, pb, workers=4)
        assert (par_c == serial_c).all()
        # Simulated timing is a pure function of the launch geometry;
        # host-side sharding must not perturb it.
        assert par_p.seconds == serial_p.seconds
        assert par_p.parallel is not None
        assert serial_p.parallel is None

    def test_framework_with_workers_bit_exact(self, population):
        serial = SNPComparisonFramework(GTX_980, Algorithm.LD)
        parallel = SNPComparisonFramework(GTX_980, Algorithm.LD, workers=4)
        entities = population.matrix.T.copy()
        c_serial, r_serial = serial.run(entities)
        c_parallel, r_parallel = parallel.run(entities)
        assert (c_parallel == c_serial).all()
        assert r_parallel.end_to_end_s == r_serial.end_to_end_s
        assert "workers=4" in repr(parallel)

    def test_multigpu_with_workers_bit_exact(self, population):
        queries = population.matrix[:8]
        database = population.matrix
        serial_table, serial_report = run_multi_gpu(
            QUAD_GTX980, Algorithm.FASTID_IDENTITY, queries, database
        )
        par_table, par_report = run_multi_gpu(
            QUAD_GTX980, Algorithm.FASTID_IDENTITY, queries, database,
            workers=2,
        )
        assert (par_table == serial_table).all()
        assert par_report.makespan_s == serial_report.makespan_s


class TestCliWorkers:
    @pytest.fixture
    def dataset_file(self, tmp_path):
        ds = generate_population(PopulationModel(24, 48, block_size=8), rng=4)
        path = tmp_path / "pop.snptxt"
        write_snptxt(path, ds)
        return str(path)

    def test_ld_accepts_workers(self, dataset_file, capsys):
        assert main(["ld", "--input", dataset_file, "--workers", "2"]) == 0
        assert "LD on" in capsys.readouterr().out

    def test_workers_zero_picks_machine_default(self, dataset_file, capsys):
        assert main(["ld", "--input", dataset_file, "--workers", "0"]) == 0
        capsys.readouterr()

    def test_negative_workers_rejected(self, dataset_file, capsys):
        assert main(["ld", "--input", dataset_file, "--workers", "-3"]) == 2
        assert "--workers" in capsys.readouterr().err
