"""Tests for repro.blis.gemm: the three popcount-GEMM drivers."""

import numpy as np
import pytest

from repro.blis.blocking import BlockingPlan
from repro.blis.gemm import bit_gemm_blocked, bit_gemm_fast, bit_gemm_reference
from repro.blis.microkernel import ComparisonOp
from repro.errors import PackingError
from repro.snp.stats import (
    identity_distances_naive,
    ld_counts_naive,
    mixture_scores_naive,
)
from repro.util.bitops import pack_bits

OPS = [ComparisonOp.AND, ComparisonOp.XOR, ComparisonOp.ANDNOT]


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(0)
    bits_a = (rng.random((23, 133)) < 0.35).astype(np.uint8)
    bits_b = (rng.random((17, 133)) < 0.55).astype(np.uint8)
    return bits_a, bits_b, pack_bits(bits_a, 32), pack_bits(bits_b, 32)


def oracle(op, bits_a, bits_b):
    if op is ComparisonOp.AND:
        return ld_counts_naive(bits_a, bits_b)
    if op is ComparisonOp.XOR:
        return identity_distances_naive(bits_a, bits_b)
    return mixture_scores_naive(bits_a, bits_b)


class TestAgainstOracle:
    @pytest.mark.parametrize("op", OPS)
    def test_reference(self, operands, op):
        bits_a, bits_b, pa, pb = operands
        assert (bit_gemm_reference(pa, pb, op) == oracle(op, bits_a, bits_b)).all()

    @pytest.mark.parametrize("op", OPS)
    def test_blocked(self, operands, op):
        bits_a, bits_b, pa, pb = operands
        assert (bit_gemm_blocked(pa, pb, op) == oracle(op, bits_a, bits_b)).all()

    @pytest.mark.parametrize("op", OPS)
    def test_fast(self, operands, op):
        bits_a, bits_b, pa, pb = operands
        assert (bit_gemm_fast(pa, pb, op) == oracle(op, bits_a, bits_b)).all()

    def test_uint64_operands(self):
        rng = np.random.default_rng(1)
        bits = (rng.random((9, 130)) < 0.5).astype(np.uint8)
        p64 = pack_bits(bits, 64)
        expected = ld_counts_naive(bits)
        assert (bit_gemm_reference(p64, p64) == expected).all()
        assert (bit_gemm_fast(p64, p64) == expected).all()


class TestBlockedPlans:
    def test_custom_plan_agrees(self, operands):
        bits_a, bits_b, pa, pb = operands
        plan = BlockingPlan(
            m=pa.shape[0], n=pb.shape[0], k=pa.shape[1],
            m_c=8, k_c=2, m_r=2, n_r=3, grid_rows=2, grid_cols=2,
        )
        out = bit_gemm_blocked(pa, pb, ComparisonOp.AND, plan)
        assert (out == ld_counts_naive(bits_a, bits_b)).all()

    def test_plan_size_mismatch_rejected(self, operands):
        _, _, pa, pb = operands
        plan = BlockingPlan(m=1, n=1, k=1, m_c=4, k_c=4, m_r=4, n_r=4)
        with pytest.raises(PackingError):
            bit_gemm_blocked(pa, pb, ComparisonOp.AND, plan)

    def test_single_element_blocks(self, operands):
        bits_a, bits_b, pa, pb = operands
        plan = BlockingPlan(
            m=pa.shape[0], n=pb.shape[0], k=pa.shape[1],
            m_c=1, k_c=1, m_r=1, n_r=1,
        )
        out = bit_gemm_blocked(pa, pb, ComparisonOp.XOR, plan)
        assert (out == identity_distances_naive(bits_a, bits_b)).all()


class TestOperandValidation:
    def test_dtype_mismatch_rejected(self):
        a = np.zeros((2, 3), dtype=np.uint32)
        b = np.zeros((2, 3), dtype=np.uint64)
        with pytest.raises(PackingError):
            bit_gemm_fast(a, b)

    def test_k_mismatch_rejected(self):
        a = np.zeros((2, 3), dtype=np.uint32)
        b = np.zeros((2, 4), dtype=np.uint32)
        with pytest.raises(PackingError):
            bit_gemm_reference(a, b)

    def test_non_2d_rejected(self):
        with pytest.raises(PackingError):
            bit_gemm_fast(np.zeros(3, dtype=np.uint32), np.zeros((2, 3), dtype=np.uint32))

    def test_signed_dtype_rejected(self):
        a = np.zeros((2, 3), dtype=np.int32)
        with pytest.raises(PackingError):
            bit_gemm_reference(a, a)


class TestEdgeShapes:
    def test_single_row_and_column(self):
        rng = np.random.default_rng(2)
        bits_a = (rng.random((1, 40)) < 0.5).astype(np.uint8)
        bits_b = (rng.random((1, 40)) < 0.5).astype(np.uint8)
        pa, pb = pack_bits(bits_a, 32), pack_bits(bits_b, 32)
        expected = ld_counts_naive(bits_a, bits_b)
        for fn in (bit_gemm_reference, bit_gemm_blocked, bit_gemm_fast):
            assert (fn(pa, pb) == expected).all()

    def test_asymmetric_fastid_shape(self):
        # Small query block vs larger database, the Fig. 1 asymmetry.
        rng = np.random.default_rng(3)
        q = (rng.random((3, 64)) < 0.5).astype(np.uint8)
        db = (rng.random((200, 64)) < 0.5).astype(np.uint8)
        pq, pdb = pack_bits(q, 32), pack_bits(db, 32)
        expected = identity_distances_naive(q, db)
        assert (bit_gemm_blocked(pq, pdb, ComparisonOp.XOR) == expected).all()

    def test_all_zero_and_all_one_rows(self):
        bits_a = np.vstack([np.zeros(64), np.ones(64)]).astype(np.uint8)
        pa = pack_bits(bits_a, 32)
        out = bit_gemm_reference(pa, pa, ComparisonOp.XOR)
        assert out[0, 1] == 64
        assert out[0, 0] == out[1, 1] == 0
