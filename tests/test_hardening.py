"""Overload, deadline and lifecycle-hardening tests for the serving stack.

Covers the :class:`Deadline` primitive, bounded admission on
:class:`CoalescingBatcher` (queue and row budgets, ``retry_after_ms``
hints, deadline rejection at admission and at batch cut), the
:class:`CircuitBreaker` state machine (trip, cooldown, half-open probe,
re-trip), service-level drain/health/shed flows, end-to-end deadline
and overload replies over the JSON-lines wire protocol, the thread-leak
guards on :class:`CoalescingBatcher.close` / :class:`BackgroundServer`,
and :class:`ChunkStream`'s deterministic close.
"""

import queue
import threading
import time

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
    ReproError,
)
from repro.io_stream import ArraySource, ChunkStream
from repro.observability.counters import (
    SERVE_BREAKER_TRIPS,
    SERVE_DEADLINE_EXCEEDED,
    SERVE_SHED,
    STREAM_PRODUCER_LEAKED,
)
from repro.observability.tracer import Tracer, set_tracer
from repro.resilience import Deadline
from repro.serve import (
    BackgroundServer,
    CircuitBreaker,
    CoalescingBatcher,
    IdentityService,
    ProfileIndex,
    ServiceClient,
)

SITES = 96


@pytest.fixture()
def tracer():
    t = Tracer()
    previous = set_tracer(t)
    yield t
    set_tracer(previous)


def make_db(rows, sites=SITES, seed=7):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(rows, sites), dtype=np.uint8)


def make_service(db, **kw):
    index = ProfileIndex(n_bits=db.shape[1])
    index.append(db)
    kw.setdefault("device", "GTX 980")
    kw.setdefault("window_s", 0.001)
    return IdentityService(index, k=3, **kw)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


# -- Deadline ------------------------------------------------------------------


class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = FakeClock()
        dl = Deadline.after(2.0, clock=clock)
        assert dl.remaining() == pytest.approx(2.0)
        assert not dl.expired
        clock.now = 2.5
        assert dl.expired
        assert dl.remaining() == 0.0
        assert dl.overrun() == pytest.approx(0.5)

    def test_check_raises_with_overrun(self):
        clock = FakeClock()
        dl = Deadline.after(1.0, clock=clock)
        dl.check("fold")  # within budget: no-op
        clock.now = 1.25
        with pytest.raises(DeadlineExceededError) as exc_info:
            dl.check("fold")
        assert exc_info.value.overrun_s == pytest.approx(0.25)

    def test_remaining_ms_floors_and_clamps(self):
        clock = FakeClock()
        dl = Deadline.after(0.5, clock=clock)
        assert dl.remaining_ms() == 500
        clock.now = 0.4995  # 0.5 ms left: floors to 0
        assert dl.remaining_ms() == 0
        clock.now = 2.0  # long expired: clamped, not negative
        assert dl.remaining_ms() == 0


# -- bounded admission ---------------------------------------------------------


class TestBoundedAdmission:
    def _blocked_batcher(self, **kw):
        """A batcher whose executor blocks until ``release`` is set."""
        release = threading.Event()
        entered = threading.Event()

        def execute(payloads):
            entered.set()
            release.wait(timeout=30)
            return [None] * len(payloads)

        batcher = CoalescingBatcher(execute, window_s=0.0, **kw)
        return batcher, release, entered

    def test_queue_full_sheds_with_retry_hint(self, tracer):
        # A wide-open window keeps the first request *queued* (not yet
        # cut), so the admission bound is hit deterministically.
        with CoalescingBatcher(
            lambda p: [None] * len(p), window_s=30.0, max_queue=1
        ) as batcher:
            future = batcher.submit("a")
            with pytest.raises(OverloadedError) as exc_info:
                batcher.submit("b")
            assert exc_info.value.reason == "queue_full"
            assert exc_info.value.retry_after_ms >= 1
        # close() cuts the pending window; the admitted request still
        # completes (graceful drain, not drop).
        assert future.result(timeout=10) is None
        assert tracer.counters.get(SERVE_SHED) == 1

    def test_inflight_row_budget_sheds(self, tracer):
        batcher, release, entered = self._blocked_batcher(max_inflight_rows=8)
        try:
            batcher.submit("a", rows=6)
            assert entered.wait(timeout=10)  # 6 rows now executing
            with pytest.raises(OverloadedError, match="row budget"):
                batcher.submit("b", rows=3)  # 6 + 3 > 8
            batcher.submit("c", rows=2)  # 6 + 2 == 8: admitted
        finally:
            release.set()
            batcher.close()
        assert tracer.counters.get(SERVE_SHED) == 1

    def test_expired_deadline_rejected_at_admission(self, tracer):
        clock = FakeClock()
        dl = Deadline.after(1.0, clock=clock)
        clock.now = 2.0
        with CoalescingBatcher(lambda p: [None] * len(p)) as batcher:
            with pytest.raises(DeadlineExceededError) as exc_info:
                batcher.submit("a", deadline=dl)
            assert exc_info.value.overrun_s == pytest.approx(1.0)
        assert tracer.counters.get(SERVE_DEADLINE_EXCEEDED) == 1

    def test_deadline_expiring_in_queue_fails_at_cut(self, tracer):
        """A budget that lapses inside the window never reaches compute."""
        executed = []
        with CoalescingBatcher(
            lambda p: executed.extend(p) or [None] * len(p), window_s=0.2
        ) as batcher:
            # 10 ms budget vs a 200 ms window: expired by the cut.
            future = batcher.submit("doomed", deadline=Deadline.after(0.01))
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=10)
        assert executed == []  # the executor never saw the payload
        assert tracer.counters.get(SERVE_DEADLINE_EXCEEDED) == 1

    def test_wait_idle_reports_quiescence(self):
        batcher, release, entered = self._blocked_batcher()
        try:
            batcher.submit("a")
            assert entered.wait(timeout=10)
            assert not batcher.wait_idle(timeout=0.05)  # still executing
            release.set()
            assert batcher.wait_idle(timeout=10)
            assert batcher.queued_requests == 0
            assert batcher.inflight_rows == 0
        finally:
            release.set()
            batcher.close()


# -- circuit breaker -----------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self, tracer):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_success()  # resets the consecutive run
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert 0 < breaker.retry_after_ms() <= 5000
        assert tracer.counters.get(SERVE_BREAKER_TRIPS) == 1

    def test_half_open_admits_one_probe(self, tracer):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 1.5  # cooldown elapsed
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_re_trips(self, tracer):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, clock=clock)
        breaker.record_failure()
        clock.now = 1.5
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert tracer.counters.get(SERVE_BREAKER_TRIPS) == 2

    def test_validates_parameters(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown_s=0)


# -- service drain / health / shed ---------------------------------------------


class TestServiceOverload:
    def test_breaker_trip_sheds_submissions(self, tracer):
        db = make_db(40)
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=60.0)
        with make_service(db, breaker=breaker) as service:
            with service.index:
                service._run_panel = lambda *a, **kw: (_ for _ in ()).throw(
                    ReproError("backend down")
                )
                with pytest.raises(ReproError):
                    service.search(make_db(1, seed=1))
                assert breaker.state == "open"
                with pytest.raises(OverloadedError) as exc_info:
                    service.search(make_db(1, seed=2))
        assert exc_info.value.reason == "breaker_open"
        assert exc_info.value.retry_after_ms > 0
        assert tracer.counters.get(SERVE_BREAKER_TRIPS) == 1
        assert tracer.counters.get(SERVE_SHED) == 1

    def test_breaker_recovers_after_cooldown(self, tracer):
        db = make_db(40)
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=0.05)
        with make_service(db, breaker=breaker) as service:
            with service.index:
                original = service._run_panel
                service._run_panel = lambda *a, **kw: (_ for _ in ()).throw(
                    ReproError("backend down")
                )
                with pytest.raises(ReproError):
                    service.search(make_db(1, seed=1))
                service._run_panel = original  # backend healed
                time.sleep(0.1)  # cooldown elapses: half-open probe
                assert service.search(make_db(1, seed=2))
                assert breaker.state == "closed"

    def test_drain_stops_admission_and_finishes_inflight(self, tracer):
        db = make_db(40)
        with make_service(db, window_s=0.05) as service:
            with service.index:
                future = service.submit(make_db(1, seed=3))
                assert service.drain(timeout=30)
                assert future.result(timeout=30)  # in-flight completed
                with pytest.raises(OverloadedError) as exc_info:
                    service.search(make_db(1, seed=4))
                assert exc_info.value.reason == "shutting_down"
                assert service.state() == "draining"
                assert service.health()["draining"] is True
        assert tracer.counters.get(SERVE_SHED) == 1

    def test_health_snapshot_when_ready(self, tracer):
        db = make_db(40)
        with make_service(db) as service:
            with service.index:
                health = service.health()
        assert health["state"] == "ready"
        assert health["breaker"] == "closed"
        assert health["breaker_trips"] == 0
        assert health["queued_requests"] == 0
        assert health["index_rows"] == 40

    def test_deadline_rejects_before_compute(self, tracer):
        db = make_db(40)
        with make_service(db) as service:
            with service.index:
                clock = FakeClock()
                dl = Deadline.after(1.0, clock=clock)
                clock.now = 2.0
                with pytest.raises(DeadlineExceededError):
                    service.search(make_db(1, seed=5), deadline=dl)
                # A float deadline is a relative budget in seconds; a
                # generous one passes through untouched.
                assert service.search(make_db(1, seed=6), deadline=30.0)
        assert tracer.counters.get(SERVE_DEADLINE_EXCEEDED) == 1


# -- wire protocol -------------------------------------------------------------


class TestWireHardening:
    def test_deadline_ms_maps_to_typed_error(self, tracer):
        db = make_db(40)
        with make_service(db, window_s=0.05) as service:
            with service.index:
                with BackgroundServer(service) as (host, port):
                    with ServiceClient(host, port) as client:
                        # A microscopic budget expires inside the 50 ms
                        # coalescing window, deterministically.
                        with pytest.raises(DeadlineExceededError) as exc_info:
                            client.search(make_db(1, seed=8), deadline_ms=0.001)
                        assert exc_info.value.overrun_s >= 0
                        # A generous budget answers normally.
                        assert client.search(make_db(1, seed=9), deadline_ms=60000)
        assert tracer.counters.get(SERVE_DEADLINE_EXCEEDED) == 1

    def test_invalid_deadline_ms_rejected(self, tracer):
        db = make_db(40)
        with make_service(db) as service:
            with service.index:
                with BackgroundServer(service) as (host, port):
                    with ServiceClient(host, port) as client:
                        with pytest.raises(ReproError, match="deadline_ms"):
                            client._call(
                                {
                                    "op": "search",
                                    "queries": [[0] * SITES],
                                    "deadline_ms": "soon",
                                }
                            )
                        with pytest.raises(ReproError, match="positive"):
                            client.search(make_db(1, seed=1), deadline_ms=-5)
                        assert client.ping()  # connection stays usable

    def test_health_verb_and_server_drain(self, tracer):
        db = make_db(40)
        with make_service(db) as service:
            with service.index:
                server = BackgroundServer(service)
                host, port = server.start()
                try:
                    with ServiceClient(host, port) as client:
                        assert client.health()["state"] == "ready"
                        assert server._server is not None
                        server._server._draining = True
                        with pytest.raises(OverloadedError) as exc_info:
                            client.search(make_db(1, seed=2))
                        assert exc_info.value.reason == "shutting_down"
                        assert client.health()["state"] == "draining"
                        assert client.ping()  # non-search ops still served
                finally:
                    server.stop()
        assert tracer.counters.get(SERVE_SHED) == 1

    def test_shed_reply_carries_retry_after(self, tracer):
        db = make_db(40)
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=60.0)
        with make_service(db, breaker=breaker) as service:
            with service.index:
                breaker.record_failure()  # trip it directly
                with BackgroundServer(service) as (host, port):
                    with ServiceClient(host, port) as client:
                        with pytest.raises(OverloadedError) as exc_info:
                            client.search(make_db(1, seed=3))
        assert exc_info.value.reason == "breaker_open"
        assert exc_info.value.retry_after_ms > 0


# -- thread-leak guards --------------------------------------------------------


class TestLeakGuards:
    def test_batcher_close_raises_on_leaked_dispatcher(self):
        batcher = CoalescingBatcher(lambda p: [None] * len(p))
        batcher.close()  # the real dispatcher drains cleanly
        release = threading.Event()
        wedged = threading.Thread(target=release.wait, daemon=True)
        wedged.start()
        batcher._closed = False
        batcher._dispatcher = wedged
        try:
            with pytest.raises(RuntimeError, match="thread leaked"):
                batcher.close(timeout=0.1)
        finally:
            release.set()

    def test_background_server_start_timeout_reaps_thread(self, monkeypatch):
        from repro.serve import server as server_mod

        async def wedged_start(self):
            # Never reports an address, but honors request_stop -- the
            # reap path in BackgroundServer.start must signal and join.
            await self._stop.wait()
            return (self.host, self.port)

        monkeypatch.setattr(server_mod.IdentityServer, "start", wedged_start)
        db = make_db(20)
        with make_service(db) as service:
            with service.index:
                background = BackgroundServer(service, start_timeout_s=0.2)
                with pytest.raises(ReproError, match="did not report"):
                    background.start()
                assert background._thread is None  # reaped, not leaked

    def test_background_server_stop_raises_on_leaked_thread(self):
        db = make_db(20)
        with make_service(db) as service:
            with service.index:
                background = BackgroundServer(service)
                release = threading.Event()
                wedged = threading.Thread(target=release.wait, daemon=True)
                wedged.start()
                background._thread = wedged
                try:
                    with pytest.raises(RuntimeError, match="thread leaked"):
                        background.stop(timeout=0.1)
                finally:
                    release.set()


# -- ChunkStream deterministic close -------------------------------------------


class _WedgedSource(ArraySource):
    """A source whose chunk iterator blocks until released."""

    def __init__(self, bits, gate):
        super().__init__(bits)
        self._gate = gate

    def chunks(self, chunk_rows):
        self._gate.wait(timeout=30)
        yield from super().chunks(chunk_rows)


class TestChunkStreamClose:
    def test_abandoned_consumer_closes_cleanly(self):
        bits = make_db(64, sites=32)
        stream = ChunkStream(ArraySource(bits), chunk_rows=8)
        iterator = iter(stream)
        next(iterator)  # take one chunk, abandon the rest
        # The producer is parked on the full hand-off queue; close must
        # drain it and join instead of deadlocking.
        stream.close()
        assert stream._thread is None

    def test_close_is_idempotent_after_exhaustion(self):
        bits = make_db(16, sites=32)
        stream = ChunkStream(ArraySource(bits), chunk_rows=8)
        assert len(list(stream)) == 2
        stream.close()
        stream.close()

    def test_wedged_producer_counted_and_raised(self, tracer):
        gate = threading.Event()
        bits = make_db(16, sites=32)
        stream = ChunkStream(_WedgedSource(bits, gate), chunk_rows=8)
        out = queue.Queue(maxsize=1)
        producer = threading.Thread(
            target=stream._producer, args=(out,), daemon=True
        )
        stream._queue = out
        stream._thread = producer
        producer.start()  # wedges inside the source read
        try:
            with pytest.raises(RuntimeError, match="thread leaked"):
                stream.close(timeout=0.2)
        finally:
            gate.set()  # release so the thread dies with the test
        assert tracer.counters.get(STREAM_PRODUCER_LEAKED) == 1
        producer.join(timeout=10)
        assert not producer.is_alive()
