"""Tests for repro.core.planner: the Table II derivation.

This is the heart of the reproduction: the analytic formulas of
Section V-A must regenerate the paper's published software
configurations from the hardware features alone.
"""

import pytest

from repro.blis.microkernel import ComparisonOp
from repro.core.config import Algorithm
from repro.core.planner import (
    ProblemShape,
    PUBLISHED_CONFIGS,
    derive_config,
    derive_core_grid,
    derive_k_c,
    derive_m_c,
    derive_m_r,
    derive_n_r,
    n_r_lower_bound,
    n_r_register_cap,
    published_config,
)
from repro.errors import ConfigurationError
from repro.gpu.arch import ALL_GPUS, GTX_980, TITAN_V, VEGA_64, GPUArchitecture
from repro.gpu.arch import MemorySystemModel
from repro.util.units import gib, kib


class TestEquationDerivations:
    def test_eq4_m_r_is_vector_width(self):
        for arch in ALL_GPUS:
            assert derive_m_r(arch) == arch.n_vec == 4

    def test_m_c_is_bank_count(self):
        for arch in ALL_GPUS:
            assert derive_m_c(arch) == 32

    def test_eq6_k_c_with_nvidia_reservation(self):
        # 48 KiB minus the OpenCL reservation over 4-byte words x 32
        # banks: 383, not 384 -- the Section V-E effect.
        assert derive_k_c(GTX_980) == 383
        assert derive_k_c(TITAN_V) == 383

    def test_eq6_k_c_vega_full_shared(self):
        assert derive_k_c(VEGA_64) == 512

    def test_eq7_lower_bounds(self):
        assert n_r_lower_bound(GTX_980) == 96
        assert n_r_lower_bound(TITAN_V) == 64
        assert n_r_lower_bound(VEGA_64) == 128

    def test_register_cap_above_published(self):
        for arch in ALL_GPUS:
            for algo in (Algorithm.LD, Algorithm.FASTID_IDENTITY):
                n_r, _, _ = PUBLISHED_CONFIGS[(arch.name, algo)]
                assert n_r <= n_r_register_cap(arch)

    def test_analytic_n_r_is_bound_multiple(self):
        for arch in ALL_GPUS:
            n_r = derive_n_r(arch)
            assert n_r % n_r_lower_bound(arch) == 0
            assert n_r <= n_r_register_cap(arch)


class TestTable2Regeneration:
    """Pin every cell of Table II."""

    @pytest.mark.parametrize(
        "arch,algo,expected_nr,expected_grid",
        [
            (GTX_980, Algorithm.LD, 384, (4, 4)),
            (TITAN_V, Algorithm.LD, 1024, (80, 1)),
            (VEGA_64, Algorithm.LD, 1024, (32, 2)),
            (GTX_980, Algorithm.FASTID_IDENTITY, 768, (1, 16)),
            (TITAN_V, Algorithm.FASTID_IDENTITY, 1024, (1, 80)),
            (VEGA_64, Algorithm.FASTID_IDENTITY, 1024, (1, 64)),
        ],
        ids=lambda v: str(getattr(v, "name", v)),
    )
    def test_published_rows(self, arch, algo, expected_nr, expected_grid):
        cfg = derive_config(arch, algo)
        assert cfg.m_r == 4
        assert cfg.m_c == 32
        assert cfg.k_c == (512 if arch is VEGA_64 else 383)
        assert cfg.n_r == expected_nr
        assert (cfg.grid_rows, cfg.grid_cols) == expected_grid

    def test_published_config_api(self):
        cfg = published_config(TITAN_V, Algorithm.LD)
        assert cfg.n_r == 1024

    def test_unknown_device_published_rejected(self):
        custom = _custom_arch()
        with pytest.raises(ConfigurationError, match="no Table II entry"):
            published_config(custom, Algorithm.LD)


class TestMixtureOpSelection:
    def test_nvidia_uses_fused_andnot(self):
        for arch in (GTX_980, TITAN_V):
            cfg = derive_config(arch, Algorithm.FASTID_MIXTURE)
            assert cfg.op is ComparisonOp.ANDNOT

    def test_vega_prefers_prenegation(self):
        cfg = derive_config(VEGA_64, Algorithm.FASTID_MIXTURE)
        assert cfg.op is ComparisonOp.AND_PRENEGATED

    def test_forced_prenegation(self):
        cfg = derive_config(TITAN_V, Algorithm.FASTID_MIXTURE, prenegate=True)
        assert cfg.op is ComparisonOp.AND_PRENEGATED

    def test_forced_fused_on_vega(self):
        cfg = derive_config(VEGA_64, Algorithm.FASTID_MIXTURE, prenegate=False)
        assert cfg.op is ComparisonOp.ANDNOT


class TestCoreGridHeuristics:
    def test_fastid_all_cores_on_database(self):
        for arch in ALL_GPUS:
            assert derive_core_grid(arch, Algorithm.FASTID_IDENTITY) == (1, arch.n_c)

    def test_small_m_behaves_like_fastid(self):
        grid = derive_core_grid(
            GTX_980, Algorithm.LD, ProblemShape(m=16, n=100_000, k_bits=1024)
        )
        assert grid == (1, 16)

    def test_ld_fallback_near_square(self):
        custom = _custom_arch(n_c=36)
        assert derive_core_grid(custom, Algorithm.LD) == (6, 6)


class TestAnalyticFallback:
    def test_unknown_device_fully_derived(self):
        custom = _custom_arch()
        cfg = derive_config(custom, Algorithm.LD)
        assert cfg.m_r == custom.n_vec
        assert cfg.m_c == custom.shared_memory_banks
        assert cfg.n_r % n_r_lower_bound(custom) == 0

    def test_use_published_false_still_valid(self):
        cfg = derive_config(GTX_980, Algorithm.LD, use_published=False)
        assert cfg.n_r >= n_r_lower_bound(GTX_980)
        assert cfg.n_r <= n_r_register_cap(GTX_980)

    def test_problem_shape_validation(self):
        with pytest.raises(ConfigurationError):
            ProblemShape(m=0, n=1, k_bits=1)


def _custom_arch(n_c: int = 8) -> GPUArchitecture:
    """A device the paper never measured: forces the analytic path."""
    return GPUArchitecture(
        name="Custom X1",
        vendor="acme",
        microarchitecture="custom",
        frequency_ghz=1.0,
        n_t=32,
        n_grp_max=32,
        n_c=n_c,
        n_cl=4,
        alu_units=16,
        popc_units=8,
        l_fn=4,
        global_memory_bytes=gib(4),
        max_alloc_bytes=gib(1),
        shared_memory_bytes=kib(48),
        shared_memory_banks=32,
        shared_memory_reserved_bytes=0,
        registers_per_core=64 * 1024,
        max_registers_per_thread=255,
        memory=MemorySystemModel(global_bandwidth_gbs=200.0),
    )
