"""Tests for repro.gpu.memsim: the mechanistic memory-system model."""

import pytest

from repro.errors import ModelError
from repro.gpu.arch import ALL_GPUS, GTX_980, TITAN_V, VEGA_64
from repro.gpu.cycles import scaling_efficiency
from repro.gpu.memsim import (
    QueueModelParams,
    emergent_scaling_curve,
    fit_queue_model,
    solve_per_core_rate,
    streaming_demand_bytes_per_cycle,
)


class TestDemand:
    def test_demand_values(self):
        # words/cycle/core x 4 bytes / m_c: 32*4/32 = 4 B/cycle on the
        # 980 and Vega; 16*4/32 = 2 on the Titan V.
        assert streaming_demand_bytes_per_cycle(GTX_980) == pytest.approx(4.0)
        assert streaming_demand_bytes_per_cycle(VEGA_64) == pytest.approx(4.0)
        assert streaming_demand_bytes_per_cycle(TITAN_V) == pytest.approx(2.0)

    def test_larger_tile_reduces_demand(self):
        assert streaming_demand_bytes_per_cycle(
            GTX_980, m_c=64
        ) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            streaming_demand_bytes_per_cycle(GTX_980, m_c=0)


class TestFixedPoint:
    params = QueueModelParams(mshr_per_core=48, base_latency_cycles=650)

    def test_single_core_unconstrained(self):
        # One core's demand is far below both bandwidth and its
        # latency-tolerance cap: it streams at full rate.
        x = solve_per_core_rate(VEGA_64, self.params, n_cores=1)
        assert x == pytest.approx(streaming_demand_bytes_per_cycle(VEGA_64), rel=1e-6)

    def test_rate_monotone_in_cores(self):
        rates = [
            solve_per_core_rate(VEGA_64, self.params, n)
            for n in (1, 8, 16, 32, 64)
        ]
        assert rates == sorted(rates, reverse=True)

    def test_rate_bounded_by_demand(self):
        d = streaming_demand_bytes_per_cycle(VEGA_64)
        for n in (1, 16, 64):
            assert 0 < solve_per_core_rate(VEGA_64, self.params, n) <= d + 1e-9

    def test_aggregate_below_bandwidth(self):
        bw = VEGA_64.memory.global_bandwidth_gbs * 1e9 / VEGA_64.frequency_hz
        x = solve_per_core_rate(VEGA_64, self.params, 64)
        assert 64 * x <= bw

    def test_validation(self):
        with pytest.raises(ModelError):
            solve_per_core_rate(VEGA_64, self.params, 0)
        with pytest.raises(ModelError):
            QueueModelParams(mshr_per_core=0, base_latency_cycles=100)


class TestEmergentCurves:
    """The headline: queueing mechanics reproduce the calibration."""

    @pytest.mark.parametrize("arch", ALL_GPUS, ids=lambda a: a.name)
    def test_fit_explains_calibrated_curve(self, arch):
        params, err = fit_queue_model(arch)
        # The mechanistic curve matches the Section VI phenomenology
        # to within 5 efficiency points at every sampled core count.
        assert err < 0.05

    def test_vega_knee_emerges(self):
        params, _ = fit_queue_model(VEGA_64)
        curve = dict(emergent_scaling_curve(VEGA_64, params))
        assert curve[8] > 0.99           # flat through the knee
        assert curve[16] < 0.95          # declining beyond it
        assert curve[64] < 0.60          # down to the Fig. 5/7 level

    def test_nvidia_stays_flat(self):
        for arch in (GTX_980, TITAN_V):
            params, _ = fit_queue_model(arch)
            curve = dict(emergent_scaling_curve(arch, params))
            assert min(curve.values()) > 0.9

    def test_emergent_matches_calibrated_pointwise_vega(self):
        params, _ = fit_queue_model(VEGA_64)
        for cores, eff in emergent_scaling_curve(VEGA_64, params):
            assert eff == pytest.approx(
                scaling_efficiency(VEGA_64, cores), abs=0.05
            )

    def test_custom_core_counts(self):
        params = QueueModelParams(mshr_per_core=48, base_latency_cycles=650)
        curve = emergent_scaling_curve(VEGA_64, params, [3, 7, 11])
        assert [c for c, _ in curve] == [3, 7, 11]
