"""Tests for repro.snp.alleles: genotype encoding and reduction."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.snp.alleles import (
    GENOTYPE_HETEROZYGOUS,
    GENOTYPE_HOMOZYGOUS_MAJOR,
    GENOTYPE_HOMOZYGOUS_MINOR,
    GENOTYPE_MISSING,
    encode_genotypes,
    minor_allele_frequencies,
    minor_allele_presence,
)


class TestEncodeGenotypes:
    def test_copy_counts_map_to_codes(self):
        copies = np.array([0, 1, 2])
        codes = encode_genotypes(copies)
        assert codes.tolist() == [
            GENOTYPE_HOMOZYGOUS_MAJOR,
            GENOTYPE_HETEROZYGOUS,
            GENOTYPE_HOMOZYGOUS_MINOR,
        ]

    def test_negative_means_missing(self):
        assert encode_genotypes(np.array([-1])).tolist() == [GENOTYPE_MISSING]

    def test_too_many_copies_rejected(self):
        with pytest.raises(DatasetError):
            encode_genotypes(np.array([3]))

    def test_dtype_is_uint8(self):
        assert encode_genotypes(np.array([0, 1])).dtype == np.uint8


class TestMinorAllelePresence:
    def test_reduction_semantics(self):
        codes = np.array(
            [
                GENOTYPE_HOMOZYGOUS_MAJOR,
                GENOTYPE_HETEROZYGOUS,
                GENOTYPE_HOMOZYGOUS_MINOR,
                GENOTYPE_MISSING,
            ]
        )
        # Presence iff at least one minor copy; missing conservatively 0.
        assert minor_allele_presence(codes).tolist() == [0, 1, 1, 0]

    def test_invalid_codes_rejected(self):
        with pytest.raises(DatasetError):
            minor_allele_presence(np.array([4]))

    def test_2d_shape_preserved(self):
        codes = np.full((3, 5), GENOTYPE_HETEROZYGOUS)
        out = minor_allele_presence(codes)
        assert out.shape == (3, 5)
        assert (out == 1).all()


class TestMinorAlleleFrequencies:
    def test_basic_frequency(self):
        # 4 samples x 1 site: copies 0,1,2,2 -> 5/8 alleles minor.
        g = np.array([[0], [1], [2], [2]])
        assert minor_allele_frequencies(g)[0] == pytest.approx(5 / 8)

    def test_missing_excluded(self):
        g = np.array([[GENOTYPE_MISSING], [2]])
        # One informative sample with 2/2 minor alleles.
        assert minor_allele_frequencies(g)[0] == pytest.approx(1.0)

    def test_all_missing_gives_zero(self):
        g = np.full((3, 2), GENOTYPE_MISSING)
        assert (minor_allele_frequencies(g) == 0).all()

    def test_requires_2d(self):
        with pytest.raises(DatasetError):
            minor_allele_frequencies(np.array([0, 1]))
