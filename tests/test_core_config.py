"""Tests for repro.core.config: KernelConfig and header emission."""

import pytest

from repro.blis.microkernel import ComparisonOp
from repro.core.config import Algorithm, KernelConfig, render_header
from repro.errors import ConfigurationError


def make_config(**overrides):
    kw = dict(
        device="GTX 980",
        algorithm=Algorithm.LD,
        op=ComparisonOp.AND,
        m_r=4,
        n_r=384,
        k_c=383,
        m_c=32,
        grid_rows=4,
        grid_cols=4,
    )
    kw.update(overrides)
    return KernelConfig(**kw)


class TestAlgorithm:
    def test_default_ops(self):
        assert Algorithm.LD.default_op is ComparisonOp.AND
        assert Algorithm.FASTID_IDENTITY.default_op is ComparisonOp.XOR
        assert Algorithm.FASTID_MIXTURE.default_op is ComparisonOp.ANDNOT

    def test_from_string(self):
        assert Algorithm("ld") is Algorithm.LD


class TestKernelConfig:
    def test_valid(self):
        cfg = make_config()
        assert cfg.n_cores == 16

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            make_config(n_r=0)

    def test_m_c_alignment_rejected(self):
        with pytest.raises(ConfigurationError):
            make_config(m_c=30)

    def test_table_row(self):
        row = make_config().as_table_row()
        assert row["Core configuration"] == "4 x 4"
        assert row["k_c"] == 383


class TestRenderHeader:
    def test_contains_all_macros(self):
        header = render_header(make_config())
        for macro in (
            "#define SNP_MR            4",
            "#define SNP_NR            384",
            "#define SNP_KC            383",
            "#define SNP_MC            32",
            "#define SNP_GRID_ROWS     4",
            "#define SNP_GRID_COLS     4",
            "#define SNP_CORES_USED    16",
        ):
            assert macro in header

    def test_include_guard(self):
        header = render_header(make_config())
        assert "#ifndef SNP_CONFIG_H" in header
        assert header.rstrip().endswith("#endif /* SNP_CONFIG_H */")

    def test_device_and_op_named(self):
        header = render_header(make_config(op=ComparisonOp.XOR))
        assert 'SNP_DEVICE        "GTX 980"' in header
        assert "SNP_OP_XOR" in header

    def test_derivation_comments_present(self):
        header = render_header(make_config())
        assert "Eq. 4" in header and "Eq. 7" in header
