"""Tests for repro.util.bitops: popcount and bit packing."""

import numpy as np
import pytest

from repro.errors import PackingError
from repro.util.bitops import (
    HAS_NATIVE_POPCOUNT,
    pack_bits,
    popcount,
    popcount_native,
    popcount_sum,
    popcount_table,
    unpack_bits,
    words_needed,
)


class TestPopcount:
    def test_known_values_u32(self):
        words = np.array([0, 1, 3, 0xFFFFFFFF, 0x80000000, 0xAAAAAAAA], dtype=np.uint32)
        expected = np.array([0, 1, 2, 32, 1, 16])
        assert (popcount(words) == expected).all()

    def test_known_values_u64(self):
        words = np.array([0, 2**63, 2**64 - 1, 0x0123456789ABCDEF], dtype=np.uint64)
        expected = np.array([0, 1, 64, bin(0x0123456789ABCDEF).count("1")])
        assert (popcount(words) == expected).all()

    def test_table_matches_native(self):
        if not HAS_NATIVE_POPCOUNT:
            pytest.skip("no native popcount on this NumPy")
        rng = np.random.default_rng(0)
        for dtype in (np.uint8, np.uint16, np.uint32, np.uint64):
            info = np.iinfo(dtype)
            w = rng.integers(0, info.max, size=500, dtype=dtype, endpoint=True)
            assert (popcount_table(w) == popcount_native(w)).all()

    def test_table_rejects_signed(self):
        with pytest.raises(PackingError):
            popcount_table(np.array([1, 2], dtype=np.int32))

    def test_preserves_shape(self):
        w = np.zeros((3, 4, 5), dtype=np.uint32)
        assert popcount(w).shape == (3, 4, 5)

    def test_result_dtype_is_int64(self):
        assert popcount(np.array([7], dtype=np.uint8)).dtype == np.int64


class TestPopcountSum:
    def test_total(self):
        w = np.array([[1, 3], [7, 0]], dtype=np.uint32)
        assert popcount_sum(w) == 1 + 2 + 3 + 0

    def test_axis(self):
        w = np.array([[1, 3], [7, 0]], dtype=np.uint32)
        assert (popcount_sum(w, axis=1) == [3, 3]).all()

    def test_total_is_python_int(self):
        assert isinstance(popcount_sum(np.array([1], dtype=np.uint32)), int)


class TestWordsNeeded:
    @pytest.mark.parametrize(
        "bits,word_bits,expected",
        [(0, 32, 0), (1, 32, 1), (32, 32, 1), (33, 32, 2), (64, 64, 1), (65, 64, 2)],
    )
    def test_values(self, bits, word_bits, expected):
        assert words_needed(bits, word_bits) == expected

    def test_negative_bits_rejected(self):
        with pytest.raises(PackingError):
            words_needed(-1)

    def test_bad_word_width_rejected(self):
        with pytest.raises(PackingError):
            words_needed(10, word_bits=12)


class TestPackUnpack:
    @pytest.mark.parametrize("word_bits", [8, 16, 32, 64])
    def test_roundtrip(self, word_bits):
        rng = np.random.default_rng(1)
        bits = (rng.random((13, 77)) < 0.4).astype(np.uint8)
        packed = pack_bits(bits, word_bits=word_bits)
        assert packed.dtype == np.dtype(f"uint{word_bits}")
        assert (unpack_bits(packed, 77) == bits).all()

    def test_popcount_preserved(self):
        rng = np.random.default_rng(2)
        bits = (rng.random((5, 100)) < 0.3).astype(np.uint8)
        packed = pack_bits(bits, 32)
        assert (popcount(packed).sum(axis=1) == bits.sum(axis=1)).all()

    def test_padding_words_are_zero(self):
        bits = np.ones((2, 10), dtype=np.uint8)
        packed = pack_bits(bits, 32, pad_to_words=4)
        assert packed.shape == (2, 4)
        assert (packed[:, 1:] == 0).all()

    def test_pad_too_small_rejected(self):
        bits = np.ones((1, 100), dtype=np.uint8)
        with pytest.raises(PackingError):
            pack_bits(bits, 32, pad_to_words=1)

    def test_non_binary_rejected(self):
        with pytest.raises(PackingError):
            pack_bits(np.array([[0, 2]]), 32)

    def test_non_2d_rejected(self):
        with pytest.raises(PackingError):
            pack_bits(np.zeros(5), 32)

    def test_bool_input_accepted(self):
        bits = np.array([[True, False, True]])
        packed = pack_bits(bits, 32)
        assert popcount(packed).sum() == 2

    def test_empty_rows(self):
        packed = pack_bits(np.zeros((0, 64), dtype=np.uint8), 32)
        assert packed.shape == (0, 2)

    def test_zero_columns(self):
        packed = pack_bits(np.zeros((3, 0), dtype=np.uint8), 32)
        assert packed.shape == (3, 0)

    def test_unpack_rejects_bad_nbits(self):
        packed = pack_bits(np.zeros((1, 32), dtype=np.uint8), 32)
        with pytest.raises(PackingError):
            unpack_bits(packed, 64)

    def test_unpack_full_width_by_default(self):
        packed = pack_bits(np.ones((1, 10), dtype=np.uint8), 32)
        assert unpack_bits(packed).shape == (1, 32)

    def test_bit_order_is_msb_first(self):
        # First bit of the row lands in the most significant position.
        bits = np.zeros((1, 32), dtype=np.uint8)
        bits[0, 0] = 1
        packed = pack_bits(bits, 32)
        assert packed[0, 0] == np.uint32(0x80000000)


class TestPackValidation:
    """The dtype-aware binary check behind pack_bits."""

    @pytest.mark.parametrize(
        "dtype", [np.uint8, np.uint16, np.uint64, np.int8, np.int32, np.int64]
    )
    def test_integer_binary_accepted(self, dtype):
        bits = np.array([[0, 1, 1, 0]], dtype=dtype)
        assert popcount(pack_bits(bits, 32)).sum() == 2

    @pytest.mark.parametrize(
        "bad",
        [
            np.array([[0, 2]], dtype=np.uint8),
            np.array([[0, -1]], dtype=np.int8),
            np.array([[0, 2]], dtype=np.int64),
            np.array([[0.0, 0.5]]),
            np.array([[0.0, -1.0]]),
        ],
    )
    def test_non_binary_rejected_per_dtype(self, bad):
        with pytest.raises(PackingError):
            pack_bits(bad, 32)

    def test_float_binary_accepted(self):
        bits = np.array([[0.0, 1.0, 1.0]])
        assert popcount(pack_bits(bits, 32)).sum() == 2


class TestPackEdgeCases:
    @pytest.mark.parametrize("word_bits", [8, 16, 32, 64])
    def test_zero_rows_roundtrip(self, word_bits):
        packed = pack_bits(np.zeros((0, 65), dtype=np.uint8), word_bits)
        assert packed.shape == (0, words_needed(65, word_bits))
        assert unpack_bits(packed, 65).shape == (0, 65)

    @pytest.mark.parametrize("word_bits", [8, 16, 32, 64])
    def test_zero_bits_roundtrip(self, word_bits):
        packed = pack_bits(np.zeros((4, 0), dtype=np.uint8), word_bits)
        assert packed.shape == (4, 0)
        assert unpack_bits(packed, 0).shape == (4, 0)

    def test_unpack_zero_words_honours_nbits_bound(self):
        empty = np.zeros((2, 0), dtype=np.uint32)
        with pytest.raises(PackingError):
            unpack_bits(empty, 1)

    @pytest.mark.parametrize("word_bits", [8, 16, 32, 64])
    @pytest.mark.parametrize("n_bits", [1, 7, 63, 64, 65, 200])
    def test_roundtrip_all_widths(self, word_bits, n_bits):
        rng = np.random.default_rng(word_bits * 1000 + n_bits)
        bits = (rng.random((3, n_bits)) < 0.5).astype(np.uint8)
        packed = pack_bits(bits, word_bits)
        assert (unpack_bits(packed, n_bits) == bits).all()

    @pytest.mark.parametrize("word_bits", [16, 32, 64])
    def test_vectorized_tail_matches_byteshift_loop(self, word_bits):
        from repro.util.bitops import _pack_words_byteshift

        rng = np.random.default_rng(9)
        bits = (rng.random((6, 3 * word_bits + 5)) < 0.5).astype(bool)
        packed = pack_bits(bits, word_bits)
        n_words = packed.shape[1]
        padded = np.zeros((6, n_words * word_bits), dtype=bool)
        padded[:, : bits.shape[1]] = bits
        as_u8 = np.packbits(padded, axis=1)
        assert (packed == _pack_words_byteshift(as_u8, word_bits)).all()
