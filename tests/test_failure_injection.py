"""Failure-injection and stress tests: the unhappy paths.

The device stack must fail loudly and leak nothing when resources run
out mid-pipeline, when callers misuse handles, or when problem shapes
hit degenerate corners.
"""

import dataclasses

import numpy as np
import pytest

from repro.blis.microkernel import ComparisonOp
from repro.core.config import Algorithm
from repro.core.framework import SNPComparisonFramework
from repro.core.packing import pack_operand
from repro.core.pipeline import plan_tiles, run_pipeline
from repro.errors import AllocationError, DeviceError
from repro.gpu.arch import GTX_980
from repro.gpu.device import Device
from repro.gpu.kernel import SnpKernel
from repro.snp.stats import ld_counts_naive
from repro.util.units import kib, mib


def shrunk_arch(**overrides):
    defaults = dict(max_alloc_bytes=kib(64), global_memory_bytes=mib(1))
    defaults.update(overrides)
    return dataclasses.replace(GTX_980, **defaults)


def ld_kernel(arch):
    return SnpKernel.compile(
        arch, ComparisonOp.AND, m_c=32, m_r=4, k_c=383, n_r=384,
        grid_rows=1, grid_cols=16,
    )


class TestAllocationExhaustion:
    def test_pipeline_rejects_oversized_query_cleanly(self):
        arch = shrunk_arch()
        context = Device(arch).create_context()
        # Query operand alone exceeds the budget.
        a = pack_operand(np.zeros((4096, 4096), dtype=np.uint8), row_multiple=4)
        b = pack_operand(np.zeros((64, 4096), dtype=np.uint8), row_multiple=4)
        before = context.memory.allocated_bytes
        with pytest.raises(AllocationError):
            plan_tiles(context, ld_kernel(arch), a, b)
        assert context.memory.allocated_bytes == before  # nothing leaked

    def test_context_memory_pressure_from_prior_allocations(self):
        arch = shrunk_arch(global_mem=None) if False else shrunk_arch(
            global_memory_bytes=mib(1)
        )
        context = Device(arch).create_context()
        # Occupy most of global memory with an unrelated allocation.
        hog = context.create_buffer(kib(60))
        rng = np.random.default_rng(0)
        a = pack_operand((rng.random((16, 640)) < 0.5).astype(np.uint8), row_multiple=4)
        b = pack_operand((rng.random((256, 640)) < 0.5).astype(np.uint8), row_multiple=4)
        queue = context.create_queue()
        live_before = context.memory.n_live
        # The pipeline still fits (tiles shrink); results stay exact.
        raw, _, plan = run_pipeline(queue, ld_kernel(arch), a, b)
        assert context.memory.n_live == live_before  # pipeline buffers freed
        hog.release()

    def test_total_memory_exhaustion_raises(self):
        arch = shrunk_arch(global_memory_bytes=kib(200), max_alloc_bytes=kib(64))
        context = Device(arch).create_context()
        buffers = []
        with pytest.raises(AllocationError):
            for _ in range(10):
                buffers.append(context.create_buffer(kib(48)))
        for buf in buffers:
            buf.release()
        assert context.memory.allocated_bytes == 0


class TestHandleMisuse:
    def test_kernel_on_released_buffer(self):
        context = Device(GTX_980).create_context()
        queue = context.create_queue()
        packed = pack_operand(np.eye(8, 64, dtype=np.uint8)).words
        a = context.create_buffer(packed.nbytes)
        b = context.create_buffer(packed.nbytes)
        c = context.create_buffer(8 * 8 * 4)
        queue.enqueue_write_buffer(a, packed)
        queue.enqueue_write_buffer(b, packed)
        b.release()
        with pytest.raises(DeviceError, match="after release"):
            queue.enqueue_kernel(ld_kernel(GTX_980), a, b, c)

    def test_read_of_never_written_buffer_in_pipeline_order(self):
        context = Device(GTX_980).create_context()
        queue = context.create_queue()
        c = context.create_buffer(256)
        with pytest.raises(DeviceError, match="before any write"):
            queue.enqueue_read_buffer(c)

    def test_cross_dtype_operands_rejected_at_kernel(self):
        context = Device(GTX_980).create_context()
        queue = context.create_queue()
        words64 = np.zeros((4, 2), dtype=np.uint64)
        a = context.create_buffer(words64.nbytes)
        queue.enqueue_write_buffer(a, words64)
        c = context.create_buffer(64)
        from repro.errors import KernelLaunchError

        with pytest.raises(KernelLaunchError, match="uint32"):
            queue.enqueue_kernel(ld_kernel(GTX_980), a, a, c)


class TestDegenerateShapes:
    def test_single_row_single_site(self):
        fw = SNPComparisonFramework(GTX_980, Algorithm.LD)
        counts, report = fw.run(np.array([[1]], dtype=np.uint8))
        assert counts.shape == (1, 1)
        assert counts[0, 0] == 1
        assert report.end_to_end_s > 0

    def test_all_zero_matrix(self):
        fw = SNPComparisonFramework(GTX_980, Algorithm.FASTID_IDENTITY)
        zeros = np.zeros((5, 100), dtype=np.uint8)
        dist, _ = fw.run(zeros, zeros)
        assert (dist == 0).all()

    def test_all_ones_matrix(self):
        fw = SNPComparisonFramework(GTX_980, Algorithm.LD)
        ones = np.ones((6, 97), dtype=np.uint8)
        counts, _ = fw.run(ones)
        assert (counts == 97).all()

    def test_site_count_not_word_aligned(self):
        rng = np.random.default_rng(1)
        for k_bits in (1, 31, 33, 63, 65, 95):
            bits = (rng.random((7, k_bits)) < 0.5).astype(np.uint8)
            fw = SNPComparisonFramework(GTX_980, Algorithm.LD)
            counts, _ = fw.run(bits)
            assert (counts == ld_counts_naive(bits)).all(), k_bits

    def test_highly_skewed_query(self):
        rng = np.random.default_rng(2)
        one_query = (rng.random((1, 256)) < 0.5).astype(np.uint8)
        db = (rng.random((3000, 256)) < 0.5).astype(np.uint8)
        fw = SNPComparisonFramework(GTX_980, Algorithm.FASTID_IDENTITY)
        dist, _ = fw.run(one_query, db)
        assert dist.shape == (1, 3000)

    def test_many_tiles_stress(self):
        # Force dozens of tiles through a tiny device and verify the
        # stitched result plus buffer hygiene.
        arch = shrunk_arch(max_alloc_bytes=8 * 1024, global_memory_bytes=mib(2))
        rng = np.random.default_rng(3)
        a_bits = (rng.random((16, 320)) < 0.4).astype(np.uint8)
        b_bits = (rng.random((2000, 320)) < 0.4).astype(np.uint8)
        a = pack_operand(a_bits, row_multiple=4)
        b = pack_operand(b_bits, row_multiple=4)
        context = Device(arch).create_context()
        queue = context.create_queue()
        raw, profiles, plan = run_pipeline(queue, ld_kernel(arch), a, b)
        assert plan.n_tiles >= 10
        assert (raw[:16, :2000] == ld_counts_naive(a_bits, b_bits)).all()
        assert context.memory.n_live == 0
