"""Tests for repro.gpu.executor: functional + priced kernel execution."""

import numpy as np
import pytest

from repro.blis.microkernel import ComparisonOp
from repro.errors import KernelLaunchError
from repro.gpu.arch import GTX_980, TITAN_V
from repro.gpu.executor import execute_kernel, price_kernel
from repro.gpu.kernel import KernelArgs, SnpKernel
from repro.snp.stats import identity_distances_naive, ld_counts_naive
from repro.util.bitops import pack_bits


@pytest.fixture(scope="module")
def kernel():
    return SnpKernel.compile(
        GTX_980, ComparisonOp.AND, m_c=32, m_r=4, k_c=383, n_r=384,
        grid_rows=4, grid_cols=4,
    )


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(0)
    bits_a = (rng.random((30, 200)) < 0.4).astype(np.uint8)
    bits_b = (rng.random((25, 200)) < 0.4).astype(np.uint8)
    return bits_a, bits_b, pack_bits(bits_a, 32), pack_bits(bits_b, 32)


class TestFunctionalPaths:
    def test_blocked_path_correct(self, kernel, operands):
        bits_a, bits_b, pa, pb = operands
        c, profile = execute_kernel(kernel, pa, pb, force_blocked_path=True)
        assert (c == ld_counts_naive(bits_a, bits_b)).all()
        assert profile.used_blocked_path

    def test_fast_path_correct(self, kernel, operands):
        bits_a, bits_b, pa, pb = operands
        c, profile = execute_kernel(kernel, pa, pb, force_blocked_path=False)
        assert (c == ld_counts_naive(bits_a, bits_b)).all()
        assert not profile.used_blocked_path

    def test_paths_produce_identical_timing(self, kernel, operands):
        _, _, pa, pb = operands
        _, p1 = execute_kernel(kernel, pa, pb, force_blocked_path=True)
        _, p2 = execute_kernel(kernel, pa, pb, force_blocked_path=False)
        assert p1.seconds == p2.seconds
        assert p1.breakdown == p2.breakdown

    def test_xor_kernel(self, operands):
        bits_a, bits_b, pa, pb = operands
        k = SnpKernel.compile(
            TITAN_V, ComparisonOp.XOR, m_c=32, m_r=4, k_c=383, n_r=1024,
            grid_rows=1, grid_cols=80,
        )
        c, _ = execute_kernel(k, pa, pb)
        assert (c == identity_distances_naive(bits_a, bits_b)).all()


class TestPricing:
    def test_dry_equals_wet(self, kernel, operands):
        _, _, pa, pb = operands
        _, wet = execute_kernel(kernel, pa, pb)
        dry = price_kernel(kernel, KernelArgs(m=pa.shape[0], n=pb.shape[0], k=pa.shape[1]))
        assert dry.seconds == wet.seconds
        assert dry.breakdown == wet.breakdown

    def test_profile_metadata(self, kernel, operands):
        _, _, pa, pb = operands
        _, profile = execute_kernel(kernel, pa, pb)
        assert profile.kernel_name == "snp_and"
        assert profile.device == "GTX 980"
        assert profile.seconds > 0
        assert 0 < profile.efficiency <= 1
        assert profile.throughput_word_ops > 0


class TestValidation:
    def test_wrong_dtype_rejected(self, kernel):
        a64 = np.zeros((4, 2), dtype=np.uint64)
        with pytest.raises(KernelLaunchError, match="uint32"):
            execute_kernel(kernel, a64, a64)

    def test_shape_mismatch_rejected(self, kernel):
        a = np.zeros((4, 2), dtype=np.uint32)
        b = np.zeros((4, 3), dtype=np.uint32)
        with pytest.raises(KernelLaunchError):
            execute_kernel(kernel, a, b)

    def test_inconsistent_args_rejected(self, kernel, operands):
        _, _, pa, pb = operands
        with pytest.raises(KernelLaunchError, match="inconsistent"):
            execute_kernel(kernel, pa, pb, args=KernelArgs(m=1, n=1, k=1))
