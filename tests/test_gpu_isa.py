"""Tests for repro.gpu.isa: pipeline assignment and unit counts."""

import pytest

from repro.errors import ModelError
from repro.gpu.arch import GTX_980, VEGA_64
from repro.gpu.isa import (
    Instruction,
    PipeClass,
    instruction_mix_pipes,
    pipe_for,
    supports,
    units_per_cluster,
)


class TestPipeAssignment:
    @pytest.mark.parametrize(
        "instr",
        [Instruction.IADD, Instruction.AND, Instruction.XOR, Instruction.NOT,
         Instruction.ANDN, Instruction.MOV],
    )
    def test_integer_ops_on_alu(self, instr):
        assert pipe_for(instr) is PipeClass.ALU

    def test_popc_on_its_own_pipe(self):
        # Section V-D: POPC never shares the integer pipe.
        assert pipe_for(Instruction.POPC) is PipeClass.POPC

    def test_memory_ops_on_mem_pipe(self):
        assert pipe_for(Instruction.LDS) is PipeClass.MEM
        assert pipe_for(Instruction.LDG) is PipeClass.MEM


class TestUnits:
    def test_maxwell_units(self):
        assert units_per_cluster(GTX_980, PipeClass.ALU) == 32
        assert units_per_cluster(GTX_980, PipeClass.POPC) == 8

    def test_vega_equal_units(self):
        # Section VI-E1: "as many functional units for logic/arithmetic
        # operations as there are for population count on the Vega 64".
        assert units_per_cluster(VEGA_64, PipeClass.ALU) == units_per_cluster(
            VEGA_64, PipeClass.POPC
        )


class TestFusedAndnot:
    def test_nvidia_supports(self):
        assert supports(GTX_980, Instruction.ANDN)

    def test_vega_does_not(self):
        assert not supports(VEGA_64, Instruction.ANDN)

    def test_plain_ops_always_supported(self):
        assert supports(VEGA_64, Instruction.AND)
        assert supports(VEGA_64, Instruction.POPC)


class TestMixPipes:
    def test_cycles_per_word(self):
        pipes = instruction_mix_pipes(GTX_980, alu_ops=2, popc_ops=1)
        assert pipes[PipeClass.ALU] == pytest.approx(2 / 32)
        assert pipes[PipeClass.POPC] == pytest.approx(1 / 8)

    def test_vega_alu_binds_for_ld_mix(self):
        pipes = instruction_mix_pipes(VEGA_64, alu_ops=2, popc_ops=1)
        assert pipes[PipeClass.ALU] > pipes[PipeClass.POPC]

    def test_nvidia_popc_binds_for_ld_mix(self):
        pipes = instruction_mix_pipes(GTX_980, alu_ops=2, popc_ops=1)
        assert pipes[PipeClass.POPC] > pipes[PipeClass.ALU]

    def test_negative_rejected(self):
        with pytest.raises(ModelError):
            instruction_mix_pipes(GTX_980, alu_ops=-1, popc_ops=0)
