"""XDG-aware cache-path resolution (tuner + compiled-kernel cache).

CI runners set ``XDG_CACHE_HOME`` to keep jobs hermetic; both
persistent caches must land under it, and the subsystem-specific
``REPRO_*`` environment variables must still win over XDG.
"""

from __future__ import annotations

from pathlib import Path

from repro.kernels import cnative_backend
from repro.parallel.tuner import TuningCache, default_tuning_path
from repro.util.cachedir import repro_cache_dir


class TestReproCacheDir:
    def test_defaults_to_home_dot_cache(self, monkeypatch):
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        assert repro_cache_dir() == Path("~/.cache").expanduser() / "repro"

    def test_honors_xdg_cache_home(self, monkeypatch, tmp_path):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert repro_cache_dir() == tmp_path / "xdg" / "repro"

    def test_empty_xdg_falls_back(self, monkeypatch):
        # The basedir spec treats an empty value as unset.
        monkeypatch.setenv("XDG_CACHE_HOME", "")
        assert repro_cache_dir() == Path("~/.cache").expanduser() / "repro"

    def test_consulted_per_call_not_at_import(self, monkeypatch, tmp_path):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "a"))
        first = repro_cache_dir()
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "b"))
        second = repro_cache_dir()
        assert first != second
        assert second == tmp_path / "b" / "repro"


class TestTuningCachePath:
    def test_xdg_cache_home_respected(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_TUNING_CACHE", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        cache = TuningCache()
        assert cache.path == tmp_path / "repro" / "host-tuning.json"

    def test_repro_env_var_beats_xdg(self, monkeypatch, tmp_path):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        monkeypatch.setenv("REPRO_TUNING_CACHE", str(tmp_path / "explicit.json"))
        cache = TuningCache()
        assert cache.path == tmp_path / "explicit.json"

    def test_explicit_path_beats_everything(self, monkeypatch, tmp_path):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        monkeypatch.setenv("REPRO_TUNING_CACHE", str(tmp_path / "env.json"))
        cache = TuningCache(tmp_path / "arg.json")
        assert cache.path == tmp_path / "arg.json"

    def test_default_without_xdg(self, monkeypatch):
        monkeypatch.delenv("REPRO_TUNING_CACHE", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        assert (
            default_tuning_path()
            == Path("~/.cache/repro/host-tuning.json").expanduser()
        )


class TestKernelCachePath:
    def test_xdg_cache_home_respected(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_KERNEL_CACHE", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert cnative_backend._cache_dir() == tmp_path / "repro" / "kernels"

    def test_repro_env_var_beats_xdg(self, monkeypatch, tmp_path):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path / "kern"))
        assert cnative_backend._cache_dir() == tmp_path / "kern"

    def test_default_without_xdg(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_CACHE", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        assert (
            cnative_backend._cache_dir()
            == Path("~/.cache/repro/kernels").expanduser()
        )

    def test_tuner_and_kernels_share_one_root(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_TUNING_CACHE", raising=False)
        monkeypatch.delenv("REPRO_KERNEL_CACHE", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        root = repro_cache_dir()
        assert TuningCache().path.parent == root
        assert cnative_backend._cache_dir().parent == root
