"""Tests for repro.snp.kinship and repro.snp.significance."""

import numpy as np
import pytest

from repro.errors import DatasetError, ModelError
from repro.snp.kinship import ibs_matrix, kinship_screen
from repro.snp.significance import (
    expected_unrelated_distance,
    ld_chi_square_pvalues,
    panel_sites_for_target_rmp,
    random_match_probability,
    site_mismatch_probabilities,
)


class TestIbsMatrix:
    @pytest.fixture(scope="class")
    def family(self):
        """Unrelated individuals plus one duplicated and one near-dup."""
        rng = np.random.default_rng(0)
        base = (rng.random((20, 400)) < 0.3).astype(np.uint8)
        dup = base[3].copy()
        near = base[7].copy()
        flip = rng.choice(400, size=20, replace=False)
        near[flip] ^= 1
        return np.vstack([base, dup[None, :], near[None, :]])

    def test_diagonal_is_one(self, family):
        result = ibs_matrix(family, device="GTX 980")
        assert np.allclose(np.diag(result.ibs), 1.0)

    def test_duplicate_detected(self, family):
        result = ibs_matrix(family, device="GTX 980")
        assert result.ibs[3, 20] == pytest.approx(1.0)
        # Near-duplicate: 20/400 flips -> IBS 0.95.
        assert result.ibs[7, 21] == pytest.approx(0.95)

    def test_unrelated_near_expectation(self, family):
        result = ibs_matrix(family[:20], device="Vega 64")
        off = result.ibs[~np.eye(20, dtype=bool)]
        assert abs(off.mean() - result.expected_random_ibs) < 0.02

    def test_related_pairs_ranked(self, family):
        result = ibs_matrix(family, device="Titan V")
        pairs = result.related_pairs(min_excess=0.1)
        assert pairs[0][:2] == (3, 20)
        assert pairs[1][:2] == (7, 21)
        found = {p[:2] for p in pairs}
        assert (0, 1) not in found

    def test_kinship_estimator_range(self, family):
        result = ibs_matrix(family, device="GTX 980")
        assert result.kinship.max() <= 1.0 + 1e-12
        assert np.allclose(np.diag(result.kinship), 1.0)

    def test_screen_wrapper(self, family):
        pairs = kinship_screen(family, device="GTX 980", min_excess=0.1)
        assert (3, 20) in {p[:2] for p in pairs}

    def test_validation(self):
        with pytest.raises(DatasetError):
            ibs_matrix(np.zeros(5))
        with pytest.raises(DatasetError):
            ibs_matrix(np.zeros((2, 0), dtype=np.uint8))


class TestLdSignificance:
    def test_null_uniformish_pvalues(self):
        # Independent sites: r^2 ~ chi2_1/n, p-values roughly uniform.
        rng = np.random.default_rng(1)
        bits = (rng.random((500, 40)) < 0.5).astype(np.uint8)
        from repro.snp.stats import ld_r_squared

        r2 = ld_r_squared(bits.T)
        p = ld_chi_square_pvalues(r2, n_samples=500)
        off = p[~np.eye(40, dtype=bool)]
        assert 0.3 < off.mean() < 0.7
        assert (off < 0.05).mean() < 0.15

    def test_perfect_ld_significant(self):
        p = ld_chi_square_pvalues(np.array([[1.0]]), n_samples=100)
        assert p[0, 0] < 1e-20

    def test_zero_r2_insignificant(self):
        p = ld_chi_square_pvalues(np.array([[0.0]]), n_samples=100)
        assert p[0, 0] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            ld_chi_square_pvalues(np.zeros((2, 2)), n_samples=0)
        with pytest.raises(DatasetError):
            ld_chi_square_pvalues(np.array([[1.5]]), n_samples=10)


class TestRandomMatchProbability:
    def test_site_mismatch_formula(self):
        q = site_mismatch_probabilities(np.array([0.0, 0.5, 1.0]))
        assert q.tolist() == [0.0, 0.5, 0.0]

    def test_expected_distance(self):
        freqs = np.full(100, 0.5)
        assert expected_unrelated_distance(freqs) == pytest.approx(50.0)

    def test_rmp_decreases_with_panel_size(self):
        small = random_match_probability(np.full(64, 0.3), max_distance=5)
        large = random_match_probability(np.full(512, 0.3), max_distance=5)
        assert large < small

    def test_rmp_monte_carlo_agreement(self):
        rng = np.random.default_rng(2)
        freqs = np.clip(rng.beta(2, 3, size=300), 0.05, 0.5)
        threshold = 90
        a = (rng.random((4000, 300)) < freqs).astype(np.uint8)
        b = (rng.random((4000, 300)) < freqs).astype(np.uint8)
        distances = (a != b).sum(axis=1)
        empirical = (distances <= threshold).mean()
        model = random_match_probability(freqs, max_distance=threshold)
        assert model == pytest.approx(empirical, abs=0.02)

    def test_zero_sites(self):
        assert random_match_probability(np.zeros(0)) == 1.0

    def test_panel_sizing(self):
        n = panel_sites_for_target_rmp(mean_maf=0.3, target_rmp=1e-9)
        # The sized panel achieves the target; one fewer site does not.
        assert random_match_probability(np.full(n, 0.3)) <= 1e-9
        assert random_match_probability(np.full(n - 1, 0.3)) > 1e-9
        # More discriminating sites -> smaller panel.
        n_balanced = panel_sites_for_target_rmp(mean_maf=0.5, target_rmp=1e-9)
        assert n_balanced < n

    def test_panel_sizing_validation(self):
        with pytest.raises(ModelError):
            panel_sites_for_target_rmp(mean_maf=0.0, target_rmp=0.1)
        with pytest.raises(ModelError):
            panel_sites_for_target_rmp(mean_maf=0.3, target_rmp=1.5)
        with pytest.raises(ModelError):
            random_match_probability(np.full(4, 0.5), max_distance=-1)
