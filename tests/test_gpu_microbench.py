"""Tests for repro.gpu.microbench: the Section V-C/D procedures.

These are the Table I validation: each procedure must *recover* the
hardware parameters the simulated device was configured with.
"""

import pytest

from repro.gpu.arch import ALL_GPUS, GTX_980, TITAN_V, VEGA_64
from repro.gpu.isa import Instruction
from repro.gpu.microbench import (
    expected_chain_latency,
    measure_latency,
    measure_throughput,
    pipes_are_shared,
    run_microbench_suite,
    throughput_sweep,
)


class TestLatencyRecovery:
    @pytest.mark.parametrize("arch", ALL_GPUS, ids=lambda a: a.name)
    def test_popc_latency_recovered(self, arch):
        measured = measure_latency(arch, Instruction.POPC)
        assert measured == pytest.approx(
            expected_chain_latency(arch, Instruction.POPC), rel=0.02
        )

    def test_expected_chain_latency_values(self):
        # Maxwell: L_fn=6 dominates the 4-cycle gap.
        assert expected_chain_latency(GTX_980, Instruction.POPC) == 6
        # Volta POPC: 8-cycle issue gap dominates L_fn=4 (see DESIGN.md).
        assert expected_chain_latency(TITAN_V, Instruction.POPC) == 8
        # Vega: gap = 64/16 = 4 = L_fn.
        assert expected_chain_latency(VEGA_64, Instruction.POPC) == 4


class TestThroughputRecovery:
    @pytest.mark.parametrize("arch", ALL_GPUS, ids=lambda a: a.name)
    def test_popc_units_recovered(self, arch):
        saturating = min(arch.n_grp_max, arch.n_cl * arch.l_fn)
        tp = measure_throughput(arch, Instruction.POPC, saturating)
        assert tp / arch.n_cl == pytest.approx(arch.popc_units, rel=0.05)

    @pytest.mark.parametrize("arch", ALL_GPUS, ids=lambda a: a.name)
    def test_alu_units_recovered(self, arch):
        saturating = min(arch.n_grp_max, arch.n_cl * arch.l_fn)
        tp = measure_throughput(arch, Instruction.IADD, saturating)
        assert tp / arch.n_cl == pytest.approx(arch.alu_units, rel=0.05)

    def test_sweep_scales_then_saturates(self):
        sweep = dict(throughput_sweep(GTX_980, Instruction.POPC, max_groups=24))
        peak = GTX_980.n_cl * GTX_980.popc_units
        # One group per cluster scales linearly (each cluster
        # independent), then group counts at multiples of N_cl sit at
        # the saturated peak; intermediate counts dip from cluster
        # load imbalance (makespan effect), which is physical.
        for g in range(1, GTX_980.n_cl + 1):
            assert sweep[g] == pytest.approx(g * GTX_980.popc_units, rel=0.05)
        for g in (8, 12, 16, 20, 24):
            assert sweep[g] == pytest.approx(peak, rel=0.05)

    def test_paper_group_count_is_sufficient(self):
        # "N_grp = N_cl x L_fn is sufficient for achieving peak".
        arch = VEGA_64
        at_paper_count = measure_throughput(
            arch, Instruction.POPC, min(arch.n_grp_max, arch.n_cl * arch.l_fn)
        )
        assert at_paper_count == pytest.approx(
            arch.n_cl * arch.popc_units, rel=0.05
        )


class TestPipeSharing:
    @pytest.mark.parametrize("arch", ALL_GPUS, ids=lambda a: a.name)
    def test_popc_separate_from_alu_everywhere(self, arch):
        assert not pipes_are_shared(arch, Instruction.POPC, Instruction.IADD)

    @pytest.mark.parametrize("arch", ALL_GPUS, ids=lambda a: a.name)
    def test_add_and_and_share_everywhere(self, arch):
        # The sharing binds performance only on Vega, but the pipes are
        # shared on every device (one integer ALU pipe in the model).
        assert pipes_are_shared(arch, Instruction.IADD, Instruction.AND)


class TestSuite:
    @pytest.mark.parametrize("arch", ALL_GPUS, ids=lambda a: a.name)
    def test_full_recovery(self, arch):
        r = run_microbench_suite(arch)
        assert r.device == arch.name
        assert r.popc_latency == pytest.approx(r.popc_latency_expected, rel=0.02)
        assert r.popc_throughput == pytest.approx(r.popc_throughput_expected, rel=0.05)
        assert r.alu_throughput == pytest.approx(r.alu_throughput_expected, rel=0.05)
        assert not r.popc_alu_shared
        assert r.add_and_shared
        assert r.popc_latency_isa == arch.l_fn
