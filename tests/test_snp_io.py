"""Tests for repro.snp.io: NPZ and snptxt persistence."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.snp.dataset import SNPDataset
from repro.snp.forensic import generate_database
from repro.snp.generator import PopulationModel, generate_population
from repro.snp.io import (
    load_database_npz,
    load_dataset_npz,
    read_snptxt,
    save_database_npz,
    save_dataset_npz,
    write_snptxt,
)


@pytest.fixture
def dataset():
    return generate_population(PopulationModel(7, 45), rng=0)


class TestDatasetNpz:
    def test_roundtrip(self, tmp_path, dataset):
        path = tmp_path / "ds.npz"
        save_dataset_npz(path, dataset)
        loaded = load_dataset_npz(path)
        assert (loaded.matrix == dataset.matrix).all()
        assert loaded.sample_ids == dataset.sample_ids
        assert loaded.site_ids == dataset.site_ids

    def test_suffixless_path_roundtrip(self, tmp_path, dataset):
        # np.savez_compressed appends .npz to suffixless paths; save and
        # load must agree on the resulting file name.
        bare = tmp_path / "dataset"
        save_dataset_npz(bare, dataset)
        assert (tmp_path / "dataset.npz").is_file()
        loaded = load_dataset_npz(bare)
        assert (loaded.matrix == dataset.matrix).all()

    def test_str_and_path_inputs_agree(self, tmp_path, dataset):
        save_dataset_npz(str(tmp_path / "s"), dataset)
        a = load_dataset_npz(str(tmp_path / "s"))
        b = load_dataset_npz(tmp_path / "s.npz")
        assert (a.matrix == b.matrix).all()

    def test_missing_file_raises_dataset_error(self, tmp_path):
        with pytest.raises(DatasetError, match="no such file"):
            load_dataset_npz(tmp_path / "absent")
        with pytest.raises(DatasetError, match="no such file"):
            load_dataset_npz(tmp_path / "absent.npz")

    def test_non_word_aligned_sites(self, tmp_path):
        ds = SNPDataset(matrix=np.eye(3, 13, dtype=np.uint8))
        path = tmp_path / "odd.npz"
        save_dataset_npz(path, ds)
        assert (load_dataset_npz(path).matrix == ds.matrix).all()

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, wrong=np.zeros(3))
        with pytest.raises(DatasetError):
            load_dataset_npz(path)


class TestDatabaseNpz:
    def test_roundtrip(self, tmp_path):
        db = generate_database(20, 33, rng=1)
        path = tmp_path / "db.npz"
        save_database_npz(path, db)
        loaded = load_database_npz(path)
        assert (loaded.profiles == db.profiles).all()
        assert np.allclose(loaded.frequencies, db.frequencies)

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, nope=np.zeros(2))
        with pytest.raises(DatasetError):
            load_database_npz(path)

    def test_suffixless_path_roundtrip(self, tmp_path):
        db = generate_database(11, 40, rng=2)
        bare = tmp_path / "database"
        save_database_npz(bare, db)
        assert (tmp_path / "database.npz").is_file()
        loaded = load_database_npz(bare)
        assert (loaded.profiles == db.profiles).all()

    def test_missing_file_raises_dataset_error(self, tmp_path):
        with pytest.raises(DatasetError, match="no such file"):
            load_database_npz(tmp_path / "absent")


class TestSnptxt:
    def test_roundtrip(self, tmp_path, dataset):
        path = tmp_path / "data.snptxt"
        write_snptxt(path, dataset)
        loaded = read_snptxt(path)
        assert (loaded.matrix == dataset.matrix).all()
        assert loaded.sample_ids == dataset.sample_ids
        assert loaded.site_ids == dataset.site_ids

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "c.snptxt"
        path.write_text(
            "# repro snptxt v1\n"
            "#samples: s0 s1\n"
            "\n"
            "# a comment\n"
            "rs1 0 1\n"
        )
        ds = read_snptxt(path)
        assert ds.n_samples == 2
        assert ds.site_ids == ["rs1"]
        assert ds.matrix.tolist() == [[0], [1]]

    def test_missing_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.snptxt"
        path.write_text("rs1 0 1\n")
        with pytest.raises(DatasetError):
            read_snptxt(path)

    def test_missing_samples_header_rejected(self, tmp_path):
        path = tmp_path / "bad.snptxt"
        path.write_text("# repro snptxt v1\nrs1 0 1\n")
        with pytest.raises(DatasetError):
            read_snptxt(path)

    def test_non_binary_rejected(self, tmp_path):
        path = tmp_path / "bad.snptxt"
        path.write_text("# repro snptxt v1\n#samples: a b\nrs1 0 2\n")
        with pytest.raises(DatasetError):
            read_snptxt(path)

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "bad.snptxt"
        path.write_text("# repro snptxt v1\n#samples: a b\nrs1 0 x\n")
        with pytest.raises(DatasetError):
            read_snptxt(path)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.snptxt"
        path.write_text("# repro snptxt v1\n#samples: a b\nrs1 0 1\nrs2 1\n")
        with pytest.raises(DatasetError):
            read_snptxt(path)

    def test_empty_sites(self, tmp_path):
        path = tmp_path / "empty.snptxt"
        path.write_text("# repro snptxt v1\n#samples: a b\n")
        ds = read_snptxt(path)
        assert ds.n_samples == 2
        assert ds.n_sites == 0
