"""Tests for the CLI front-end and the Gantt schedule renderer."""

import numpy as np
import pytest

from repro.cli import main
from repro.bench.gantt import overlap_fraction, render_gantt
from repro.core.packing import pack_operand
from repro.core.pipeline import run_pipeline
from repro.gpu.arch import GTX_980
from repro.gpu.device import Device
from repro.snp.dataset import SNPDataset
from repro.snp.forensic import generate_database
from repro.snp.generator import PopulationModel, generate_population
from repro.snp.io import save_database_npz, save_dataset_npz, write_snptxt


@pytest.fixture
def dataset_file(tmp_path):
    ds = generate_population(PopulationModel(30, 60, block_size=10), rng=0)
    path = tmp_path / "pop.snptxt"
    write_snptxt(path, ds)
    return str(path)


@pytest.fixture
def database_files(tmp_path):
    db = generate_database(200, 96, rng=1)
    db_path = tmp_path / "db.npz"
    save_database_npz(db_path, db)
    queries = SNPDataset(matrix=db.profiles[:3].copy())
    q_path = tmp_path / "queries.npz"
    save_dataset_npz(q_path, queries)
    return str(q_path), str(db_path)


class TestCli:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "GTX 980" in out and "Vega 64" in out

    def test_tune_prints_config(self, capsys):
        assert main(["tune", "--device", "Vega 64", "--algorithm", "ld"]) == 0
        out = capsys.readouterr().out
        assert "512" in out and "#define SNP_KC" in out

    def test_tune_writes_header(self, tmp_path, capsys):
        header = tmp_path / "config.h"
        assert main(
            ["tune", "--device", "GTX 980", "--header", str(header)]
        ) == 0
        assert "#define SNP_KC            383" in header.read_text()

    def test_ld_summary(self, dataset_file, tmp_path, capsys):
        out_npz = tmp_path / "ld.npz"
        code = main(
            ["ld", "--input", dataset_file, "--device", "GTX 980",
             "--output", str(out_npz)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean r2" in out
        data = np.load(out_npz)
        assert data["counts"].shape == (60, 60)

    def test_identity_finds_planted_members(self, database_files, capsys):
        q_path, db_path = database_files
        assert main(
            ["identity", "--queries", q_path, "--database", db_path,
             "--device", "Titan V"]
        ) == 0
        out = capsys.readouterr().out
        assert "matches (distance <= 0) : 3" in out

    def test_mixture(self, database_files, tmp_path, capsys):
        q_path, db_path = database_files
        assert main(
            ["mixture", "--references", db_path, "--mixture", q_path]
        ) == 0
        out = capsys.readouterr().out
        assert "consistent references" in out

    def test_missing_file_errors(self, capsys):
        assert main(["ld", "--input", "nope.snptxt"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_format_errors(self, tmp_path, capsys):
        bad = tmp_path / "data.csv"
        bad.write_text("1,2,3")
        assert main(["ld", "--input", str(bad)]) == 2


class TestGantt:
    def _tiled_queue(self):
        rng = np.random.default_rng(0)
        a = pack_operand((rng.random((16, 640)) < 0.4).astype(np.uint8), row_multiple=4)
        b = pack_operand((rng.random((4000, 640)) < 0.4).astype(np.uint8), row_multiple=4)
        from repro.blis.microkernel import ComparisonOp
        from repro.gpu.kernel import SnpKernel
        import dataclasses

        arch = dataclasses.replace(
            GTX_980,
            max_alloc_bytes=64 * 1024,
            global_memory_bytes=GTX_980.global_memory_bytes,
        )
        kernel = SnpKernel.compile(
            arch, ComparisonOp.XOR, m_c=32, m_r=4, k_c=383, n_r=384,
            grid_rows=1, grid_cols=16,
        )
        queue = Device(arch).create_context().create_queue()
        run_pipeline(queue, kernel, a, b)
        return queue

    def test_render_contains_lanes(self):
        queue = self._tiled_queue()
        chart = render_gantt(queue)
        for lane in ("h2d", "compute", "d2h"):
            assert lane in chart
        assert "overlap" in chart

    def test_empty_queue(self):
        queue = Device(GTX_980).create_context().create_queue()
        assert "no commands" in render_gantt(queue)

    def test_overlap_fraction_positive_for_pipeline(self):
        queue = self._tiled_queue()
        assert overlap_fraction(queue) > 0.0

    def test_overlap_fraction_empty(self):
        queue = Device(GTX_980).create_context().create_queue()
        assert overlap_fraction(queue) == 0.0

    def test_bars_within_width(self):
        queue = self._tiled_queue()
        chart = render_gantt(queue, width=40)
        for line in chart.splitlines():
            if "|" in line and line.count("|") == 2:
                bar = line.split("|")[1]
                assert len(bar) == 40
