"""Tests for repro.core.pipeline: tiling and double buffering."""

import numpy as np
import pytest

from repro.blis.microkernel import ComparisonOp
from repro.core.packing import pack_operand
from repro.core.pipeline import plan_tiles, run_pipeline
from repro.errors import AllocationError
from repro.gpu.arch import GTX_980, GPUArchitecture, MemorySystemModel
from repro.gpu.device import Device
from repro.gpu.kernel import SnpKernel
from repro.snp.stats import ld_counts_naive
from repro.util.units import kib, mib


def tiny_memory_arch(max_alloc=mib(1), global_mem=mib(4)) -> GPUArchitecture:
    """A GTX-980-like device with toy memory limits to force tiling."""
    return GPUArchitecture(
        name="Tiny 980",
        vendor="NVIDIA",
        microarchitecture="Maxwell",
        frequency_ghz=1.367,
        n_t=32,
        n_grp_max=32,
        n_c=16,
        n_cl=4,
        alu_units=32,
        popc_units=8,
        l_fn=6,
        global_memory_bytes=global_mem,
        max_alloc_bytes=max_alloc,
        shared_memory_bytes=kib(48),
        shared_memory_banks=32,
        shared_memory_reserved_bytes=16,
        registers_per_core=64 * 1024,
        max_registers_per_thread=255,
        memory=MemorySystemModel(global_bandwidth_gbs=185.0),
    )


def make_kernel(arch, n_r=384, grid=(1, 16)):
    return SnpKernel.compile(
        arch, ComparisonOp.AND, m_c=32, m_r=4, k_c=383, n_r=n_r,
        grid_rows=grid[0], grid_cols=grid[1],
    )


@pytest.fixture
def small_problem():
    rng = np.random.default_rng(0)
    a_bits = (rng.random((16, 320)) < 0.4).astype(np.uint8)
    b_bits = (rng.random((700, 320)) < 0.4).astype(np.uint8)
    a = pack_operand(a_bits, row_multiple=4)
    b = pack_operand(b_bits, row_multiple=4)
    return a_bits, b_bits, a, b


class TestPlanTiles:
    def test_single_tile_when_fits(self, small_problem):
        _, _, a, b = small_problem
        context = Device(GTX_980).create_context()
        plan = plan_tiles(context, make_kernel(GTX_980), a, b)
        assert plan.n_tiles == 1
        assert plan.ranges == ((0, b.padded_rows),)

    def test_multiple_tiles_on_tiny_device(self, small_problem):
        _, _, a, b = small_problem
        arch = tiny_memory_arch(max_alloc=8 * 1024)
        context = Device(arch).create_context()
        plan = plan_tiles(context, make_kernel(arch), a, b)
        assert plan.n_tiles > 1
        # Tiles partition the padded database exactly.
        covered = [i for s, e in plan.ranges for i in range(s, e)]
        assert covered == list(range(b.padded_rows))

    def test_tile_respects_max_alloc(self, small_problem):
        _, _, a, b = small_problem
        arch = tiny_memory_arch(max_alloc=8 * 1024)
        context = Device(arch).create_context()
        plan = plan_tiles(context, make_kernel(arch), a, b)
        word_bytes = arch.word_bytes
        assert plan.tile_rows * b.k_words * word_bytes <= arch.max_alloc_bytes
        assert a.padded_rows * plan.tile_rows * 4 <= arch.max_alloc_bytes

    def test_impossible_problem_rejected(self):
        arch = tiny_memory_arch(max_alloc=kib(64), global_mem=kib(256))
        context = Device(arch).create_context()
        # A alone exceeds the budget.
        a = pack_operand(np.zeros((4096, 4096), dtype=np.uint8))
        b = pack_operand(np.zeros((8, 4096), dtype=np.uint8))
        with pytest.raises(AllocationError):
            plan_tiles(context, make_kernel(arch), a, b)


class TestRunPipeline:
    def test_single_tile_correct(self, small_problem):
        a_bits, b_bits, a, b = small_problem
        queue = Device(GTX_980).create_context().create_queue()
        raw, profiles, plan = run_pipeline(queue, make_kernel(GTX_980), a, b)
        assert plan.n_tiles == 1
        assert len(profiles) == 1
        assert (raw[:16, :700] == ld_counts_naive(a_bits, b_bits)).all()

    def test_tiled_matches_untiled(self, small_problem):
        a_bits, b_bits, a, b = small_problem
        arch = tiny_memory_arch(max_alloc=8 * 1024)
        queue = Device(arch).create_context().create_queue()
        raw, profiles, plan = run_pipeline(queue, make_kernel(arch), a, b)
        assert plan.n_tiles > 1
        assert len(profiles) == plan.n_tiles
        assert (raw[:16, :700] == ld_counts_naive(a_bits, b_bits)).all()

    def test_double_buffering_overlaps(self, small_problem):
        _, _, a, b = small_problem
        arch = tiny_memory_arch(max_alloc=8 * 1024)

        def total_time(double_buffering):
            queue = Device(arch).create_context().create_queue()
            run_pipeline(
                queue, make_kernel(arch), a, b, double_buffering=double_buffering
            )
            return queue.finish()

        overlapped = total_time(True)
        serialized = total_time(False)
        assert overlapped < serialized

    def test_buffers_released(self, small_problem):
        _, _, a, b = small_problem
        context = Device(GTX_980).create_context()
        queue = context.create_queue()
        run_pipeline(queue, make_kernel(GTX_980), a, b)
        assert context.memory.n_live == 0
        assert context.memory.allocated_bytes == 0

    def test_mismatched_device_rejected(self, small_problem):
        _, _, a, b = small_problem
        arch = tiny_memory_arch()
        queue = Device(GTX_980).create_context().create_queue()
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_pipeline(queue, make_kernel(arch), a, b)
