"""Tests for repro.gpu.cycles: the analytical kernel cycle model.

Pins the model to the paper's quantitative claims: peak throughputs,
bottleneck pipes, the Fig. 5 kernel efficiencies, and the stall-factor
behaviour of bad configurations.
"""

import pytest

from repro.blis.blocking import BlockingPlan
from repro.blis.microkernel import ComparisonOp
from repro.errors import ModelError
from repro.gpu.arch import ALL_GPUS, GTX_980, TITAN_V, VEGA_64
from repro.gpu.cycles import (
    bottleneck_pipe,
    conflict_stall_factor,
    effective_frequency_hz,
    kernel_cycles,
    kernel_instruction_mix,
    latency_stall_factor,
    min_n_r,
    peak_word_ops_per_second,
    ramp_efficiency,
    scaling_efficiency,
    spill_stall_factor,
    words_per_cycle_per_core,
)
from repro.gpu.isa import PipeClass


def plan_for(arch, m, n, k, **overrides):
    kw = dict(m=m, n=n, k=k, m_c=32, k_c=256, m_r=4, n_r=1024,
              grid_rows=1, grid_cols=arch.n_c)
    kw.update(overrides)
    return BlockingPlan(**kw)


class TestInstructionMix:
    def test_ld_mix(self):
        assert kernel_instruction_mix(GTX_980, ComparisonOp.AND) == (2, 1)

    def test_andnot_mix_fused_vs_not(self):
        assert kernel_instruction_mix(TITAN_V, ComparisonOp.ANDNOT) == (2, 1)
        assert kernel_instruction_mix(VEGA_64, ComparisonOp.ANDNOT) == (3, 1)


class TestPeaks:
    def test_paper_peak_values(self):
        # N_c x N_cl x units_on_bottleneck_pipe x f.
        assert peak_word_ops_per_second(GTX_980) / 1e9 == pytest.approx(
            16 * 4 * 8 * 1.367, rel=1e-6
        )
        assert peak_word_ops_per_second(TITAN_V) / 1e9 == pytest.approx(
            80 * 4 * 4 * 1.455, rel=1e-6
        )
        # Vega is ALU-bound at 2 ALU ops per word: 16/2 = 8 words/cluster.
        assert peak_word_ops_per_second(VEGA_64) / 1e9 == pytest.approx(
            64 * 4 * 8 * 1.663, rel=1e-6
        )

    def test_bottleneck_pipes(self):
        assert bottleneck_pipe(GTX_980, ComparisonOp.AND) is PipeClass.POPC
        assert bottleneck_pipe(TITAN_V, ComparisonOp.AND) is PipeClass.POPC
        assert bottleneck_pipe(VEGA_64, ComparisonOp.AND) is PipeClass.ALU

    def test_vega_andnot_slower_than_and(self):
        and_peak = peak_word_ops_per_second(VEGA_64, ComparisonOp.AND)
        andnot_peak = peak_word_ops_per_second(VEGA_64, ComparisonOp.ANDNOT)
        assert andnot_peak == pytest.approx(and_peak * 2 / 3)

    def test_nvidia_andnot_equals_and(self):
        for arch in (GTX_980, TITAN_V):
            assert peak_word_ops_per_second(arch, ComparisonOp.ANDNOT) == (
                peak_word_ops_per_second(arch, ComparisonOp.AND)
            )

    def test_partial_cores(self):
        full = peak_word_ops_per_second(GTX_980)
        half = peak_word_ops_per_second(GTX_980, n_cores=8)
        assert half == pytest.approx(full / 2)

    def test_core_bounds_enforced(self):
        with pytest.raises(ModelError):
            peak_word_ops_per_second(GTX_980, n_cores=17)

    def test_words_per_cycle(self):
        assert words_per_cycle_per_core(GTX_980, ComparisonOp.AND) == pytest.approx(32)
        assert words_per_cycle_per_core(VEGA_64, ComparisonOp.AND) == pytest.approx(32)
        assert words_per_cycle_per_core(TITAN_V, ComparisonOp.AND) == pytest.approx(16)


class TestScalingAndFrequency:
    def test_flat_below_knee(self):
        for arch in ALL_GPUS:
            assert scaling_efficiency(arch, 1) == 1.0
            assert scaling_efficiency(arch, arch.memory.scaling_knee_cores) == 1.0

    def test_vega_decays_past_knee(self):
        assert scaling_efficiency(VEGA_64, 64) == pytest.approx(0.553, abs=0.01)
        assert scaling_efficiency(VEGA_64, 16) > scaling_efficiency(VEGA_64, 32)

    def test_gtx980_mild_decay(self):
        assert scaling_efficiency(GTX_980, 16) == pytest.approx(0.926, abs=0.01)

    def test_titanv_near_perfect(self):
        assert scaling_efficiency(TITAN_V, 80) > 0.99

    def test_dvfs_only_at_one_core(self):
        assert effective_frequency_hz(TITAN_V, 1) == pytest.approx(
            TITAN_V.frequency_hz * 0.95
        )
        assert effective_frequency_hz(TITAN_V, 2) == TITAN_V.frequency_hz

    def test_bounds(self):
        with pytest.raises(ModelError):
            scaling_efficiency(GTX_980, 0)


class TestStallFactors:
    def test_eq7_satisfied_no_stall(self):
        plan = plan_for(GTX_980, 1024, 1024, 100, n_r=384)
        assert latency_stall_factor(GTX_980, plan) == 1.0

    def test_eq7_violated_stalls(self):
        # n_r below the bound exposes latency proportionally.
        bound = min_n_r(GTX_980, 4, 32)
        plan = plan_for(GTX_980, 1024, 1024, 100, n_r=bound // 2)
        assert latency_stall_factor(GTX_980, plan) == pytest.approx(2.0)

    def test_min_n_r_values(self):
        assert min_n_r(GTX_980, 4, 32) == 96    # (32*4/32)*4*6
        assert min_n_r(TITAN_V, 4, 32) == 64    # (32*4/32)*4*4
        assert min_n_r(VEGA_64, 4, 32) == 128   # (64*4/32)*4*4

    def test_conflict_free_at_bank_width(self):
        plan = plan_for(GTX_980, 256, 256, 10, m_c=32)
        assert conflict_stall_factor(GTX_980, plan) == 1.0

    def test_conflicts_beyond_banks(self):
        plan = plan_for(GTX_980, 256, 256, 10, m_c=64)
        assert conflict_stall_factor(GTX_980, plan) == pytest.approx(2.0)

    def test_no_spill_at_published_configs(self):
        plan = plan_for(TITAN_V, 256, 1024, 10, n_r=1024)
        assert spill_stall_factor(TITAN_V, plan) == 1.0

    def test_spill_kicks_in_for_huge_n_r(self):
        plan = plan_for(TITAN_V, 256, 16384, 10, n_r=16384)
        assert spill_stall_factor(TITAN_V, plan) > 1.0

    def test_ramp_monotone(self):
        values = [ramp_efficiency(GTX_980, x) for x in (16, 64, 256, 4096)]
        assert values == sorted(values)
        assert values[-1] > 0.95


class TestFig5Efficiencies:
    """The headline kernel-efficiency numbers of Fig. 5."""

    @pytest.mark.parametrize(
        "arch,grid,m,k_bits,expected",
        [
            (GTX_980, (4, 4), 12_256, 15_360, 0.907),
            (TITAN_V, (80, 1), 12_256, 25_600, 0.971),
            (VEGA_64, (32, 2), 16_384, 40_960, 0.549),
        ],
        ids=["GTX980", "TitanV", "Vega64"],
    )
    def test_efficiency_at_max_problem(self, arch, grid, m, k_bits, expected):
        from repro.core.planner import derive_config
        from repro.core.config import Algorithm

        cfg = derive_config(arch, Algorithm.LD)
        plan = BlockingPlan(
            m=m, n=m, k=k_bits // 32, m_c=cfg.m_c, k_c=cfg.k_c,
            m_r=cfg.m_r, n_r=cfg.n_r,
            grid_rows=cfg.grid_rows, grid_cols=cfg.grid_cols,
        )
        breakdown = kernel_cycles(arch, plan)
        assert breakdown.efficiency == pytest.approx(expected, abs=0.01)

    def test_breakdown_consistency(self):
        plan = plan_for(GTX_980, 2048, 2048, 128, grid_rows=4, grid_cols=4)
        b = kernel_cycles(GTX_980, plan)
        assert b.word_ops == 2048 * 2048 * 128
        assert b.seconds == pytest.approx(b.total_cycles / b.frequency_hz)
        assert b.throughput_word_ops == pytest.approx(b.word_ops / b.seconds)
        assert 0 < b.efficiency <= 1.0

    def test_too_many_cores_rejected(self):
        plan = plan_for(GTX_980, 64, 64, 4, grid_rows=4, grid_cols=8)
        with pytest.raises(ModelError):
            kernel_cycles(GTX_980, plan)
