"""Tests for repro.gpu.arch: Table I presets and derived quantities."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu.arch import (
    ALL_GPUS,
    GTX_980,
    TITAN_V,
    VEGA_64,
    GPUArchitecture,
    MemorySystemModel,
    get_gpu,
)
from repro.util.units import gib, kib


class TestTable1Values:
    """Pin the presets to the paper's Table I."""

    def test_gtx_980(self):
        g = GTX_980
        assert g.microarchitecture == "Maxwell"
        assert g.frequency_ghz == 1.367
        assert (g.n_t, g.n_grp_max, g.n_c, g.n_cl) == (32, 32, 16, 4)
        assert (g.alu_units, g.popc_units, g.l_fn) == (32, 8, 6)
        assert g.shared_memory_bytes == kib(48)
        assert g.shared_memory_banks == 32
        assert g.registers_per_core == 64 * 1024
        assert g.max_registers_per_thread == 255

    def test_titan_v(self):
        g = TITAN_V
        assert g.microarchitecture == "Volta"
        assert g.frequency_ghz == 1.455
        assert (g.n_t, g.n_grp_max, g.n_c, g.n_cl) == (32, 32, 80, 4)
        assert (g.alu_units, g.popc_units, g.l_fn) == (16, 4, 4)
        assert g.global_memory_bytes == int(11.754 * gib(1))

    def test_vega_64(self):
        g = VEGA_64
        assert g.microarchitecture == "Vega (GCN5)"
        assert g.frequency_ghz == 1.663
        assert (g.n_t, g.n_grp_max, g.n_c, g.n_cl) == (64, 16, 64, 4)
        assert (g.alu_units, g.popc_units, g.l_fn) == (16, 16, 4)
        assert g.shared_memory_bytes == kib(64)
        assert g.max_registers_per_thread == 256
        assert not g.has_fused_andnot

    def test_nvidia_shared_reservation(self):
        # Section V-E: NVIDIA's OpenCL reserves shared memory; Vega not.
        assert GTX_980.shared_memory_reserved_bytes > 0
        assert TITAN_V.shared_memory_reserved_bytes > 0
        assert VEGA_64.shared_memory_reserved_bytes == 0

    def test_describe_has_table1_fields(self):
        row = GTX_980.describe()
        assert row["Compute Cores (N_c)"] == 16
        assert row["Shared Memory (KiB)"] == 48
        assert row["Global Memory (GiB)"] == pytest.approx(3.934)


class TestDerivedQuantities:
    def test_frequency_hz(self):
        assert GTX_980.frequency_hz == pytest.approx(1.367e9)

    def test_usable_shared_memory(self):
        assert GTX_980.usable_shared_memory_bytes == kib(48) - 16
        assert VEGA_64.usable_shared_memory_bytes == kib(64)

    def test_threads_per_core_is_framework_occupancy(self):
        # N_cl * L_fn thread groups of N_T threads.
        assert GTX_980.threads_per_core == 4 * 6 * 32
        assert VEGA_64.threads_per_core == 4 * 4 * 64

    def test_registers_per_thread(self):
        assert TITAN_V.registers_per_thread() == 64 * 1024 // (4 * 4 * 32)

    def test_word_bytes(self):
        assert all(g.word_bytes == 4 for g in ALL_GPUS)


class TestLookup:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("GTX 980", GTX_980),
            ("gtx 980", GTX_980),
            ("maxwell", GTX_980),
            ("Titan V", TITAN_V),
            ("volta", TITAN_V),
            ("vega", VEGA_64),
            ("Vega 64", VEGA_64),
        ],
    )
    def test_get_gpu(self, name, expected):
        assert get_gpu(name) is expected

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown GPU"):
            get_gpu("RTX 5090")


class TestValidation:
    def base_kwargs(self):
        return dict(
            name="t", vendor="v", microarchitecture="m", frequency_ghz=1.0,
            n_t=32, n_grp_max=32, n_c=4, n_cl=2, alu_units=8, popc_units=4,
            l_fn=4, global_memory_bytes=gib(1), max_alloc_bytes=gib(1) // 2,
            shared_memory_bytes=kib(48), shared_memory_banks=32,
            shared_memory_reserved_bytes=0, registers_per_core=1024,
            max_registers_per_thread=64,
        )

    def test_valid_construction(self):
        GPUArchitecture(**self.base_kwargs())

    def test_nonpositive_rejected(self):
        kw = self.base_kwargs()
        kw["n_c"] = 0
        with pytest.raises(ConfigurationError):
            GPUArchitecture(**kw)

    def test_reservation_exceeding_shared_rejected(self):
        kw = self.base_kwargs()
        kw["shared_memory_reserved_bytes"] = kib(48)
        with pytest.raises(ConfigurationError):
            GPUArchitecture(**kw)

    def test_max_alloc_beyond_global_rejected(self):
        kw = self.base_kwargs()
        kw["max_alloc_bytes"] = gib(2)
        with pytest.raises(ConfigurationError):
            GPUArchitecture(**kw)

    def test_bad_word_bits_rejected(self):
        kw = self.base_kwargs()
        kw["word_bits"] = 16
        with pytest.raises(ConfigurationError):
            GPUArchitecture(**kw)


class TestMemorySystemModel:
    def test_presets_have_calibration(self):
        for g in ALL_GPUS:
            assert isinstance(g.memory, MemorySystemModel)
            assert g.memory.global_bandwidth_gbs > 0
            assert g.memory.host_bandwidth_gbs > 0
            assert g.memory.init_overhead_s > 0.1  # "hundreds of ms"

    def test_titan_has_dvfs_term(self):
        assert TITAN_V.memory.single_core_frequency_scale < 1.0
        assert GTX_980.memory.single_core_frequency_scale == 1.0

    def test_vega_decays_fastest(self):
        assert (
            VEGA_64.memory.scaling_decay
            > GTX_980.memory.scaling_decay
            > TITAN_V.memory.scaling_decay
        )
