"""Integration tests: full workflows across subsystem boundaries.

These exercise the library the way the examples do: generate realistic
data with the genetics substrate, run the framework on every simulated
device, cross-check against the CPU baseline and the naive oracles, and
validate the performance reports against the analytical estimator.
"""

import numpy as np
import pytest

from repro.core import (
    Algorithm,
    SNPComparisonFramework,
    identity_search,
    linkage_disequilibrium,
    mixture_analysis,
)
from repro.cpu.blis_cpu import cpu_snp_comparison
from repro.gpu.arch import ALL_GPUS, GTX_980, TITAN_V
from repro.model.endtoend import estimate_end_to_end
from repro.snp.dataset import SNPDataset
from repro.snp.forensic import generate_database, generate_queries, make_mixture
from repro.snp.generator import PopulationModel, generate_population
from repro.snp.io import load_dataset_npz, save_dataset_npz
from repro.snp.stats import ld_r_squared
from repro.util.bitops import pack_bits


class TestPortabilityAcrossDevices:
    """The paper's headline: one framework, identical results everywhere."""

    @pytest.fixture(scope="class")
    def workload(self):
        rng = np.random.default_rng(7)
        a = (rng.random((40, 500)) < 0.35).astype(np.uint8)
        b = (rng.random((90, 500)) < 0.45).astype(np.uint8)
        return a, b

    @pytest.mark.parametrize("algorithm", list(Algorithm), ids=lambda a: a.value)
    def test_gpu_results_device_independent(self, workload, algorithm):
        a, b = workload
        tables = []
        for arch in ALL_GPUS:
            fw = SNPComparisonFramework(arch, algorithm)
            table, report = fw.run(a, b)
            tables.append(table)
            assert report.end_to_end_s > 0
        for other in tables[1:]:
            assert (tables[0] == other).all()

    def test_gpu_matches_cpu_baseline(self, workload):
        a, b = workload
        fw = SNPComparisonFramework(TITAN_V, Algorithm.LD)
        gpu_table, _ = fw.run(a, b)
        cpu_table = cpu_snp_comparison(pack_bits(a, 64), pack_bits(b, 64))
        assert (gpu_table == cpu_table).all()


class TestPopulationLdWorkflow:
    def test_end_to_end_with_persistence(self, tmp_path):
        # Generate a structured population, persist, reload, analyze.
        model = PopulationModel(
            n_samples=150, n_sites=96, block_size=12, founders_per_block=3,
            maf_alpha=3.0, maf_beta=3.0, recombination_noise=0.01,
        )
        dataset = generate_population(model, rng=11)
        path = tmp_path / "population.npz"
        save_dataset_npz(path, dataset)
        dataset = load_dataset_npz(path)

        result = linkage_disequilibrium(dataset, device="GTX 980", compare="sites")
        assert np.allclose(result.r_squared, ld_r_squared(dataset.matrix.T))

        # Within-block pairs carry more LD than between-block pairs.
        r2 = result.r_squared
        within = [r2[i, i + 1] for i in range(0, 84, 12)]
        between = [r2[i, i + 12] for i in range(0, 84, 12)]
        assert np.mean(within) > np.mean(between)

    def test_report_matches_estimator(self):
        dataset = generate_population(PopulationModel(64, 128), rng=3)
        result = linkage_disequilibrium(dataset, device="Vega 64", compare="samples")
        est = estimate_end_to_end(
            ALL_GPUS[2], Algorithm.LD, 64, 64, 128
        )
        assert result.report.end_to_end_s == pytest.approx(
            est.end_to_end_s, rel=1e-9
        )


class TestForensicWorkflow:
    @pytest.fixture(scope="class")
    def casework(self):
        db = generate_database(800, 384, rng=21)
        queries, members = generate_queries(db, 4, 4, rng=22, error_rate=0.01)
        return db, queries, members

    def test_identity_pipeline(self, casework):
        db, queries, members = casework
        result = identity_search(queries, db, device="Titan V")
        # Perturbed member queries: nearest neighbour is still the
        # true row, at small nonzero distance.
        for qi in range(4):
            best, dist = result.best_match(qi)
            assert best == int(members[qi])
            assert 0 <= dist <= 384 * 0.05
        # Unrelated queries sit far from everything.
        for qi in range(4, 8):
            _, dist = result.best_match(qi)
            assert dist > 384 * 0.05

    def test_mixture_pipeline(self, casework):
        db, _, _ = casework
        contributors = db.profiles[100:103]
        mixture = make_mixture(contributors)[None, :]
        result = mixture_analysis(db.profiles[:200], mixture, device="Vega 64")
        flagged = {r for r, _ in result.consistent_contributors(0)}
        assert {100, 101, 102} <= flagged
        # False-positive rate among non-contributors stays low.
        assert len(flagged) < 40

    def test_fastid_framework_reuse_over_growing_database(self, casework):
        db, queries, _ = casework
        fw = SNPComparisonFramework(GTX_980, Algorithm.FASTID_IDENTITY)
        d_small, _ = fw.run(queries, db.profiles[:100])
        d_large, _ = fw.run(queries, db.profiles)
        assert (d_large[:, :100] == d_small).all()


class TestDatasetToFrameworkBoundary:
    def test_snpdataset_direct_use(self):
        ds = SNPDataset(matrix=np.eye(8, 64, dtype=np.uint8))
        result = linkage_disequilibrium(ds, device="GTX 980", compare="samples")
        # Identity rows: diagonal 1, off-diagonal 0.
        assert (np.diag(result.counts) == 1).all()
        assert result.counts.sum() == 8
