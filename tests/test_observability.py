"""Observability layer: tracer, counters, trace export, regression gate.

Covers the invariants the layer promises:

* span nesting and thread attribution in the recording tracer;
* counter *exactness* -- POPC word-ops equal the closed form
  ``m * n * k`` on every execution path (serial drivers, sharded engine
  across worker counts and shard strategies), and packed bytes equal
  ``padded_rows * k_words * word_bytes``;
* the disabled default is a true no-op (shared null span, null
  counters, nothing recorded);
* the merged Chrome-trace export is schema-valid JSON with one host
  pid plus one pid per simulated device;
* the regression gate round-trips record -> compare cleanly and fails
  on a synthetic 2x slowdown, an exact-counter drift, and a missing
  metric.
"""

import json
import threading

import numpy as np
import pytest

from repro.blis.gemm import bit_gemm_blocked, bit_gemm_fast
from repro.core.framework import SNPComparisonFramework
from repro.observability import (
    GEMM_CALLS,
    GEMM_WORD_OPS,
    KERNEL_LAUNCHES,
    NULL_TRACER,
    PACK_BYTES,
    PACK_OPERANDS,
    SHARDS_EXECUTED,
    MetricsReport,
    NullTracer,
    Tracer,
    disable,
    enable,
    get_tracer,
    merged_trace_events,
    set_tracer,
    write_merged_trace,
)
from repro.observability.regress import (
    DETERMINISTIC_COUNTERS,
    Metric,
    compare_metrics,
    load_metrics,
    record_baseline,
)
from repro.parallel.engine import ParallelEngine
from repro.util.bitops import pack_bits


@pytest.fixture(autouse=True)
def _restore_tracer():
    """Every test leaves the process tracer as it found it (disabled)."""
    previous = set_tracer(None)
    yield
    set_tracer(previous)


def make_packed(m, n, k_words, word_bits=32, seed=0):
    rng = np.random.default_rng(seed)
    sites = k_words * word_bits
    a = (rng.random((m, sites)) < 0.4).astype(np.uint8)
    b = (rng.random((n, sites)) < 0.4).astype(np.uint8)
    return pack_bits(a, word_bits), pack_bits(b, word_bits)


# -- tracer ---------------------------------------------------------------------


class TestTracer:
    def test_nesting_records_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        records = {r.name: r for r in tracer.spans()}
        assert records["outer"].depth == 0
        assert records["outer"].parent_id is None
        assert records["inner"].depth == 1
        assert records["inner"].parent_id == records["outer"].span_id
        assert outer.name == "outer"

    def test_completion_order_and_durations(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        names = [r.name for r in tracer.spans()]
        assert names == ["b", "a"]  # inner closes first
        for record in tracer.spans():
            assert record.end >= record.start

    def test_attrs_via_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", m=3).set(n=4):
            pass
        (record,) = tracer.spans()
        assert record.attrs == {"m": 3, "n": 4}

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(label):
            with tracer.span("thread-root", label=label):
                barrier.wait()
                with tracer.span("thread-child", label=label):
                    pass

        threads = [
            threading.Thread(target=work, args=(i,), name=f"obs-test-{i}")
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = tracer.spans()
        assert len(records) == 4
        roots = [r for r in records if r.name == "thread-root"]
        children = [r for r in records if r.name == "thread-child"]
        # Depth is per-thread: both roots sit at 0 even though the two
        # threads overlapped (the barrier guarantees they did).
        assert {r.depth for r in roots} == {0}
        assert {r.depth for r in children} == {1}
        by_label = {r.attrs["label"]: r.span_id for r in roots}
        for child in children:
            assert child.parent_id == by_label[child.attrs["label"]]
        assert {r.thread for r in records} == {"obs-test-0", "obs-test-1"}

    def test_span_totals_aggregates_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("repeat"):
                pass
        count, total = tracer.span_totals()["repeat"]
        assert count == 3
        assert total >= 0.0

    def test_enable_disable_swap_global(self):
        assert get_tracer() is NULL_TRACER
        tracer = enable()
        assert get_tracer() is tracer
        assert tracer.enabled
        disable()
        assert get_tracer() is NULL_TRACER


class TestNullPath:
    def test_null_tracer_records_nothing(self):
        null = NullTracer()
        with null.span("anything", key="value") as span:
            span.set(more=1)
        assert null.spans() == []
        assert null.n_spans() == 0
        assert null.span_totals() == {}

    def test_null_span_is_shared_singleton(self):
        null = NullTracer()
        assert null.span("a") is null.span("b")

    def test_null_counters_stay_empty(self):
        null = NullTracer()
        null.counters.add(GEMM_WORD_OPS, 10**9)
        assert null.counters.get(GEMM_WORD_OPS) == 0
        assert null.counters.snapshot() == {}
        assert not null.counters.enabled

    def test_disabled_default_sees_no_counts_from_real_work(self):
        # The process default is the null tracer; run real instrumented
        # work and confirm nothing sticks anywhere.
        pa, pb = make_packed(16, 32, 4)
        bit_gemm_fast(pa, pb, "and")
        assert get_tracer().counters.snapshot() == {}
        assert get_tracer().n_spans() == 0


# -- counter exactness ----------------------------------------------------------


class TestCounterExactness:
    M, N, KW = 64, 192, 16

    def expected_word_ops(self):
        return self.M * self.N * self.KW

    def test_serial_fast_driver(self):
        tracer = enable()
        pa, pb = make_packed(self.M, self.N, self.KW)
        bit_gemm_fast(pa, pb, "and")
        assert tracer.counters.get(GEMM_WORD_OPS) == self.expected_word_ops()
        assert tracer.counters.get(GEMM_CALLS) == 1

    def test_serial_blocked_driver(self):
        tracer = enable()
        pa, pb = make_packed(self.M, self.N, self.KW)
        bit_gemm_blocked(pa, pb, "and")
        assert tracer.counters.get(GEMM_WORD_OPS) == self.expected_word_ops()
        assert tracer.counters.get(GEMM_CALLS) == 1

    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("strategy", ["gemm", "blocked"])
    def test_sharded_engine_all_paths(self, workers, strategy):
        """Word-ops are exact however the work is partitioned."""
        tracer = enable()
        pa, pb = make_packed(self.M, self.N, self.KW)
        engine = ParallelEngine(workers=workers, strategy=strategy)
        try:
            _, report = engine.run(pa, pb, "and", force_parallel=workers > 1)
        finally:
            engine.shutdown()
        assert tracer.counters.get(GEMM_WORD_OPS) == self.expected_word_ops()
        assert tracer.counters.get(GEMM_CALLS) == 1
        assert tracer.counters.get(SHARDS_EXECUTED) == max(1, report.n_shards)
        assert report.metrics is not None
        assert report.metrics.counter(GEMM_WORD_OPS) == self.expected_word_ops()

    def test_framework_pack_bytes_closed_form(self):
        tracer = enable()
        fw = SNPComparisonFramework("GTX 980", "ld")
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, size=(60, 500), dtype=np.uint8)
        _, report = fw.run(bits)
        global_bytes = tracer.counters.get(PACK_BYTES)
        packed = fw.pack(bits)  # adds to the global registry, not the report
        expected_bytes = (
            packed.padded_rows * packed.k_words * packed.words.itemsize
        )
        assert report.metrics is not None
        # LD packs one operand (B aliases A).
        assert report.metrics.counter(PACK_OPERANDS) == 1
        assert report.metrics.counter(PACK_BYTES) == expected_bytes
        assert report.metrics.counter(KERNEL_LAUNCHES) == report.n_kernel_launches
        assert global_bytes == expected_bytes

    def test_metrics_delta_scopes_to_one_run(self):
        enable()
        pa, pb = make_packed(32, 64, 8)
        engine = ParallelEngine(workers=1)
        try:
            _, first = engine.run(pa, pb, "and")
            _, second = engine.run(pa, pb, "and")
        finally:
            engine.shutdown()
        ops = 32 * 64 * 8
        # Each report sees only its own run, not the accumulated total.
        assert first.metrics.counter(GEMM_WORD_OPS) == ops
        assert second.metrics.counter(GEMM_WORD_OPS) == ops


# -- metrics report -------------------------------------------------------------


class TestMetricsReport:
    def test_json_round_trip(self):
        tracer = enable()
        with tracer.span("work"):
            tracer.counters.add(GEMM_WORD_OPS, 42)
        report = MetricsReport.from_tracer(tracer)
        clone = MetricsReport.from_json(report.to_json())
        assert clone.counter(GEMM_WORD_OPS) == 42
        assert clone.span_total("work") == report.span_total("work")
        assert json.dumps(report.to_json())  # JSON-serializable

    def test_summary_lines_render(self):
        report = MetricsReport(counters={GEMM_WORD_OPS: 7})
        text = str(report)
        assert GEMM_WORD_OPS in text
        assert "counters:" in text


# -- trace export ---------------------------------------------------------------


def _run_traced_framework():
    tracer = enable()
    fw = SNPComparisonFramework("GTX 980", "ld")
    rng = np.random.default_rng(3)
    bits = rng.integers(0, 2, size=(40, 300), dtype=np.uint8)
    fw.run(bits)
    return tracer, fw


class TestTraceExport:
    def test_merged_schema_is_valid(self):
        tracer, fw = _run_traced_framework()
        events = merged_trace_events(tracer, [fw.last_queue])
        assert events
        pids = {e["pid"] for e in events}
        assert "host" in pids
        assert "GTX 980" in pids
        for event in events:
            assert event["ph"] in ("M", "X")
            assert "name" in event and "pid" in event
            if event["ph"] == "X":
                assert event["ts"] >= 0.0
                assert event["dur"] >= 0.0
                assert "tid" in event
            else:
                assert event["name"] in ("process_name", "thread_name")
        # Host spans made it across with their lineage args.
        host_names = {
            e["name"] for e in events if e["ph"] == "X" and e["pid"] == "host"
        }
        assert {"framework.run", "pipeline.run", "kernel.execute"} <= host_names

    def test_duplicate_device_pids_are_suffixed(self):
        tracer, fw = _run_traced_framework()
        queue = fw.last_queue
        events = merged_trace_events(tracer, [queue, queue])
        pids = {e["pid"] for e in events}
        assert "GTX 980" in pids
        assert "GTX 980 [1]" in pids

    def test_write_merged_trace_file(self, tmp_path):
        tracer, fw = _run_traced_framework()
        path = tmp_path / "trace.json"
        n_events = write_merged_trace(path, tracer, [fw.last_queue])
        data = json.loads(path.read_text(encoding="utf-8"))
        assert isinstance(data, list)
        assert len(data) == n_events > 0

    def test_export_without_queues_is_host_only(self):
        tracer = enable()
        with tracer.span("solo"):
            pass
        events = merged_trace_events(tracer)
        assert {e["pid"] for e in events} == {"host"}


# -- regression gate ------------------------------------------------------------


def _sweep_payload(scale=1.0, word_ops=128 * 512 * 32):
    return {
        "problem": {"m": 128, "n": 512, "k_words": 32},
        "repeats": 1,
        "word_ops": word_ops,
        "rows": [
            {
                "workers": w,
                "seconds": 0.01 * scale / w,
                "speedup": float(w),
                "strategy": "gemm",
                "n_shards": 2 * w,
                "bit_exact": True,
                "cache_hit_rate": 0.5,
            }
            for w in (1, 4)
        ],
        "counters": {
            "gemm.popc_word_ops": word_ops,
            "gemm.calls": 1,
            "shards.executed": 8,
            "cache.hits": 3,  # nondeterministic: must NOT be gated
        },
    }


class TestRegressionGate:
    def _record(self, tmp_path, name="sweep", **kwargs):
        fresh = tmp_path / f"{name}.json"
        fresh.write_text(json.dumps(_sweep_payload(**kwargs)), encoding="utf-8")
        return fresh

    def test_round_trip_clean(self, tmp_path):
        fresh = self._record(tmp_path)
        metrics = load_metrics([fresh])
        baseline = record_baseline("test", metrics)
        comparisons = compare_metrics(baseline, load_metrics([fresh]))
        assert comparisons
        assert not any(c.failed for c in comparisons)

    def test_nondeterministic_counters_not_gated(self, tmp_path):
        fresh = self._record(tmp_path)
        names = {m.name for m in load_metrics([fresh])}
        assert "sweep:counter.gemm.popc_word_ops" in names
        assert not any("cache.hits" in n for n in names)
        assert "cache.hits" not in DETERMINISTIC_COUNTERS

    def test_synthetic_2x_slowdown_fails(self, tmp_path):
        baseline = record_baseline("test", load_metrics([self._record(tmp_path)]))
        slow = self._record(tmp_path, name="sweep2", scale=2.0)
        slow_metrics = [
            m.__class__(m.name.replace("sweep2:", "sweep:"), m.value, m.kind)
            for m in load_metrics([slow])
        ]
        comparisons = compare_metrics(baseline, slow_metrics, timing_tolerance=0.30)
        regressed = [c for c in comparisons if c.status == "regressed"]
        assert regressed
        assert all(c.kind == "timing" for c in regressed)

    def test_exact_counter_drift_fails(self, tmp_path):
        baseline = record_baseline("test", load_metrics([self._record(tmp_path)]))
        drifted = self._record(tmp_path, name="sweep3", word_ops=999)
        metrics = [
            m.__class__(m.name.replace("sweep3:", "sweep:"), m.value, m.kind)
            for m in load_metrics([drifted])
        ]
        failed = {c.name for c in compare_metrics(baseline, metrics) if c.failed}
        assert "sweep:word_ops" in failed
        assert "sweep:counter.gemm.popc_word_ops" in failed

    def test_missing_metric_fails(self, tmp_path):
        fresh = self._record(tmp_path)
        baseline = record_baseline("test", load_metrics([fresh]))
        partial = [m for m in load_metrics([fresh]) if "workers4" not in m.name]
        comparisons = compare_metrics(baseline, partial)
        missing = [c for c in comparisons if c.status == "missing"]
        assert missing
        assert all(c.failed for c in missing)

    def test_cli_record_compare_round_trip(self, tmp_path):
        from repro.observability.regress import main as regress_main

        fresh = self._record(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        assert (
            regress_main(
                ["record", "--name", "t", "--out", str(baseline_path), str(fresh)]
            )
            == 0
        )
        report_path = tmp_path / "report.json"
        assert (
            regress_main(
                [
                    "compare",
                    "--baseline",
                    str(baseline_path),
                    "--report",
                    str(report_path),
                    str(fresh),
                ]
            )
            == 0
        )
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["failed"] == 0

    def test_cli_compare_exits_nonzero_on_slowdown(self, tmp_path):
        from repro.observability.regress import main as regress_main

        clean_dir = tmp_path / "clean"
        slow_dir = tmp_path / "slow"
        for d in (clean_dir, slow_dir):
            d.mkdir()
        (clean_dir / "sweep.json").write_text(
            json.dumps(_sweep_payload()), encoding="utf-8"
        )
        (slow_dir / "sweep.json").write_text(
            json.dumps(_sweep_payload(scale=2.0)), encoding="utf-8"
        )
        baseline_path = tmp_path / "baseline.json"
        regress_main(
            [
                "record",
                "--name",
                "t",
                "--out",
                str(baseline_path),
                str(clean_dir / "sweep.json"),
            ]
        )
        assert (
            regress_main(
                ["compare", "--baseline", str(baseline_path), str(slow_dir / "sweep.json")]
            )
            == 1
        )


class TestNonFiniteGate:
    """NaN/inf measurements must fail the gate, never slide into "ok".

    NaN makes every ordered comparison false, so before the explicit
    guard a NaN timing or ratio fell through to the "ok"/"within
    tolerance" branch and CI reported green on a measurement that never
    happened.
    """

    def _one(self, kind, fresh_value, base_value=1.0):
        baseline = record_baseline("t", [Metric("m:x", base_value, kind)])
        (comparison,) = compare_metrics(baseline, [Metric("m:x", fresh_value, kind)])
        return comparison

    @pytest.mark.parametrize("kind", ["exact", "timing", "ratio"])
    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_fresh_regresses_every_kind(self, kind, bad):
        comparison = self._one(kind, bad)
        assert comparison.status == "regressed"
        assert comparison.failed
        assert "non-finite fresh value" in comparison.detail

    @pytest.mark.parametrize("kind", ["exact", "timing", "ratio"])
    def test_non_finite_baseline_regresses_every_kind(self, kind):
        comparison = self._one(kind, 1.0, base_value=float("nan"))
        assert comparison.status == "regressed"
        assert "non-finite baseline value" in comparison.detail
        assert "re-record" in comparison.detail

    def test_finite_values_unaffected(self):
        assert self._one("timing", 1.0).status == "ok"
        assert self._one("exact", 1.0).status == "ok"
