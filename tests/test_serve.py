"""Tests for repro.serve: index residency, coalescing, service, wire.

Covers the :class:`ProfileIndex` shard/tail lifecycle (build, reopen,
append barrier, sealing, validation), the :class:`CoalescingBatcher`
contract (burst coalescing, per-payload exception isolation, contract
violations, close semantics), :class:`IdentityService` bit-exactness
against :class:`StreamingIdentitySearch` (burst vs trickle, first-seen
tie-breaking, both residency paths), the word-ops amortization the
coalescer exists for (exact counters), the solo-fallback isolation
ladder, tenant accounting, and the JSON-lines TCP front end.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.streaming import StreamingIdentitySearch
from repro.errors import ConfigurationError, DatasetError, ReproError
from repro.observability.counters import (
    GEMM_WORD_OPS,
    PACK_OPERANDS,
    SERVE_BATCH_ROWS,
    SERVE_BATCHES,
    SERVE_COALESCED_BATCHES,
    SERVE_QUERIES,
    SERVE_REQUEST_FAILURES,
    SERVE_SOLO_FALLBACKS,
)
from repro.observability.tracer import Tracer, set_tracer
from repro.serve import (
    BackgroundServer,
    CoalescingBatcher,
    IdentityService,
    ProfileIndex,
    ServiceClient,
)
from repro.serve.metrics import LatencyWindow

SITES = 96


@pytest.fixture()
def tracer():
    t = Tracer()
    previous = set_tracer(t)
    yield t
    set_tracer(previous)


def make_db(rows, sites=SITES, seed=7, duplicates=0):
    """A binary profile matrix; ``duplicates`` repeats the first row."""
    rng = np.random.default_rng(seed)
    db = rng.integers(0, 2, size=(rows, sites), dtype=np.uint8)
    for i in range(duplicates):
        db[1 + i] = db[0]
    return db


def oracle(queries, db_chunks, k):
    search = StreamingIdentitySearch(queries, k=k)
    for chunk in db_chunks:
        search.add_batch(chunk)
    return search.all_matches()


# -- ProfileIndex ---------------------------------------------------------------


class TestProfileIndex:
    def test_build_shards_and_reopen(self, tmp_path):
        db = make_db(70)
        with ProfileIndex.build(tmp_path, db, shard_rows=32) as index:
            assert index.n_rows == 70
            assert index.n_bits == SITES
            assert index.n_segments == 3  # 32 + 32 + 6
        # Reopen from the files alone; global order must match.
        with ProfileIndex(tmp_path) as reopened:
            assert reopened.n_rows == 70
            whole = np.vstack(list(reopened.iter_bits(chunk_rows=16)))
            assert np.array_equal(whole, db)

    def test_append_returns_global_range(self, tmp_path):
        db = make_db(10)
        with ProfileIndex.build(tmp_path, db, shard_rows=32) as index:
            start, stop = index.append(make_db(4, seed=9))
            assert (start, stop) == (10, 14)
            start, stop = index.append(make_db(1, seed=11))
            assert (start, stop) == (14, 15)
            assert index.n_rows == 15

    def test_append_auto_seals_at_shard_rows(self, tmp_path):
        with ProfileIndex.build(tmp_path, make_db(4), shard_rows=4) as index:
            index.append(make_db(4, seed=1))
            shards = sorted(p.name for p in tmp_path.glob("*.snpbin"))
            assert shards == ["shard-000000.snpbin", "shard-000001.snpbin"]
            # Row order survives the seal.
            whole = np.vstack(list(index.iter_bits()))
            assert np.array_equal(whole[:4], make_db(4))
            assert np.array_equal(whole[4:], make_db(4, seed=1))

    def test_manual_seal_keeps_row_order(self, tmp_path):
        with ProfileIndex.build(tmp_path, make_db(6), shard_rows=100) as index:
            extra = make_db(3, seed=3)
            index.append(extra)
            before = np.vstack(list(index.iter_bits()))
            assert index.seal() is not None
            assert index.seal() is None  # nothing left to seal
            after = np.vstack(list(index.iter_bits()))
            assert np.array_equal(before, after)

    def test_memory_index_requires_n_bits(self):
        with pytest.raises(DatasetError, match="n_bits is required"):
            ProfileIndex()
        index = ProfileIndex(n_bits=SITES)
        index.append(make_db(5))
        assert index.n_rows == 5
        assert index.seal() is None  # memory-only: seal is a no-op

    def test_rejects_mismatched_sites_and_non_binary(self):
        index = ProfileIndex(n_bits=SITES)
        with pytest.raises(DatasetError, match="sites"):
            index.append(make_db(2, sites=SITES + 1))
        with pytest.raises(DatasetError, match="non-binary"):
            index.append(np.full((2, SITES), 3, dtype=np.uint8))

    def test_reopen_rejects_mixed_widths(self, tmp_path):
        ProfileIndex.build(tmp_path / "a", make_db(4), shard_rows=4)
        ProfileIndex.build(tmp_path / "b", make_db(4, sites=40), shard_rows=4)
        (tmp_path / "b" / "shard-000000.snpbin").rename(
            tmp_path / "a" / "shard-999999.snpbin"
        )
        with pytest.raises(DatasetError, match="sites"):
            ProfileIndex(tmp_path / "a")

    def test_snapshot_is_immutable_view(self):
        index = ProfileIndex(n_bits=SITES)
        index.append(make_db(3))
        snap = index.snapshot()
        index.append(make_db(2, seed=5))
        assert sum(s.n_rows for s in snap) == 3
        assert sum(s.n_rows for s in index.snapshot()) == 5


# -- CoalescingBatcher ----------------------------------------------------------


class TestCoalescingBatcher:
    def test_burst_coalesces_into_one_batch(self):
        batches = []

        def execute(payloads):
            batches.append(list(payloads))
            return [p * 10 for p in payloads]

        with CoalescingBatcher(execute, window_s=0.05, max_rows=64) as batcher:
            futures = [batcher.submit(i) for i in range(5)]
            assert [f.result(timeout=10) for f in futures] == [
                0, 10, 20, 30, 40,
            ]
        assert len(batches) == 1
        assert batches[0] == [0, 1, 2, 3, 4]  # admission order

    def test_exception_outcome_fails_only_that_future(self):
        def execute(payloads):
            return [
                ValueError(f"bad {p}") if p == "poison" else p.upper()
                for p in payloads
            ]

        with CoalescingBatcher(execute, window_s=0.05) as batcher:
            good = batcher.submit("ok")
            bad = batcher.submit("poison")
            also_good = batcher.submit("fine")
            assert good.result(timeout=10) == "OK"
            assert also_good.result(timeout=10) == "FINE"
            with pytest.raises(ValueError, match="bad poison"):
                bad.result(timeout=10)

    def test_executor_raise_fails_whole_batch(self):
        def execute(payloads):
            raise RuntimeError("boom")

        with CoalescingBatcher(execute, window_s=0.02) as batcher:
            futures = [batcher.submit(i) for i in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match="boom"):
                    future.result(timeout=10)

    def test_wrong_outcome_count_is_contract_violation(self):
        with CoalescingBatcher(lambda ps: [1], window_s=0.05) as batcher:
            a = batcher.submit("x")
            b = batcher.submit("y")
            with pytest.raises(RuntimeError, match="outcomes"):
                a.result(timeout=10)
            with pytest.raises(RuntimeError, match="outcomes"):
                b.result(timeout=10)

    def test_max_rows_cuts_batches(self):
        sizes = []

        def execute(payloads):
            sizes.append(len(payloads))
            return list(payloads)

        with CoalescingBatcher(execute, window_s=0.05, max_rows=2) as batcher:
            futures = [batcher.submit(i) for i in range(5)]
            for future in futures:
                future.result(timeout=10)
        assert max(sizes) <= 2
        assert sum(sizes) == 5

    def test_submit_after_close_raises(self):
        batcher = CoalescingBatcher(lambda ps: list(ps))
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(1)

    def test_close_drains_queued_work(self):
        release = threading.Event()

        def execute(payloads):
            release.wait(timeout=10)
            return list(payloads)

        batcher = CoalescingBatcher(execute, window_s=0.0)
        future = batcher.submit("queued")
        release.set()
        batcher.close()
        assert future.result(timeout=10) == "queued"

    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="window_s"):
            CoalescingBatcher(lambda ps: ps, window_s=-1)
        with pytest.raises(ValueError, match="max_rows"):
            CoalescingBatcher(lambda ps: ps, max_rows=0)


# -- IdentityService ------------------------------------------------------------


def make_service(tmp_path, db, k=5, shard_rows=24, word_bits=32, **kw):
    index = ProfileIndex.build(
        tmp_path, db, shard_rows=shard_rows, word_bits=word_bits
    )
    return IdentityService(index, k=k, **kw)


class TestIdentityServiceExactness:
    def test_bit_exact_vs_streaming_multi_shard(self, tmp_path, tracer):
        db = make_db(70, duplicates=3)  # ties exercise first-seen order
        queries = make_db(6, seed=21)
        expected = oracle(queries, [db], k=4)
        with make_service(tmp_path, db, k=4) as service:
            with service.index:
                assert service.search(queries) == expected

    def test_burst_vs_trickle_identical_topk(self, tmp_path, tracer):
        db = make_db(50, duplicates=5)
        query_sets = [make_db(1, seed=100 + i) for i in range(8)]
        oracles = [oracle(q, [db], k=6) for q in query_sets]
        with make_service(tmp_path, db, k=6) as service:
            with service.index:
                trickle = [service.search(q) for q in query_sets]
                burst = service.search_many(query_sets)
        assert trickle == oracles
        assert burst == oracles

    @pytest.mark.parametrize("word_bits", [32, 64])
    def test_both_residency_paths_bit_exact(self, tmp_path, tracer, word_bits):
        db = make_db(40)
        queries = make_db(3, seed=33)
        expected = oracle(queries, [db], k=5)
        with make_service(tmp_path, db, word_bits=word_bits) as service:
            with service.index:
                before = tracer.counters.get(PACK_OPERANDS)
                assert service.search(queries) == expected
                packs = tracer.counters.get(PACK_OPERANDS) - before
        n_segments = -(-40 // 24)
        if word_bits == 32:
            # Zero-repack residency: shard words are the operand; only
            # the query panel is packed.
            assert packs == 1
        else:
            assert packs == 1 + n_segments

    def test_append_barrier_visible_to_later_queries(self, tmp_path, tracer):
        db = make_db(30)
        with make_service(tmp_path, db, k=40, shard_rows=16) as service:
            with service.index:
                probe = make_db(1, seed=50)
                start, stop = service.append(probe)  # its own exact match
                assert (start, stop) == (30, 31)
                matches = service.search(probe)[0]
                assert any(
                    m.database_index == 30 and m.distance == 0
                    for m in matches
                )
                # And the offline oracle over the same post-append
                # database agrees on the full top-k.
                full = np.vstack([db, probe])
                assert [matches] == oracle(probe, [full], k=40)

    def test_mixed_tail_and_shards_bit_exact(self, tmp_path, tracer):
        db = make_db(30)
        extra = make_db(7, seed=61)
        queries = make_db(2, seed=62)
        with make_service(tmp_path, db, shard_rows=16) as service:
            with service.index:
                service.append(extra)
                expected = oracle(queries, [db, extra], k=5)
                assert service.search(queries) == expected
                # Sealing the tail changes segment identities, not
                # results.
                service.index.seal()
                assert service.search(queries) == expected


class TestIdentityServiceAmortization:
    def test_coalesced_word_ops_at_most_0_6x_solo(self, tmp_path, tracer):
        db = make_db(48)
        query_sets = [make_db(1, seed=200 + i) for i in range(8)]
        with make_service(tmp_path, db) as service:
            with service.index:
                before = tracer.counters.get(GEMM_WORD_OPS)
                for q in query_sets:
                    service.search_many([q])
                mid = tracer.counters.get(GEMM_WORD_OPS)
                service.search_many(query_sets)
                after = tracer.counters.get(GEMM_WORD_OPS)
        solo = (mid - before) / len(query_sets)
        coalesced = (after - mid) / len(query_sets)
        assert solo > 0
        assert coalesced <= 0.6 * solo

    def test_serve_counters_account_batches(self, tmp_path, tracer):
        db = make_db(30)
        query_sets = [make_db(1, seed=300 + i) for i in range(4)]
        with make_service(tmp_path, db) as service:
            with service.index:
                service.search_many(query_sets)
                service.search(query_sets[0])
        assert tracer.counters.get(SERVE_QUERIES) == 5
        assert tracer.counters.get(SERVE_BATCHES) == 2
        assert tracer.counters.get(SERVE_COALESCED_BATCHES) == 1
        assert tracer.counters.get(SERVE_BATCH_ROWS) == 5


class TestIdentityServiceIsolation:
    def test_poisoned_request_degrades_to_solo(self, tmp_path, tracer):
        db = make_db(30)
        good_a = make_db(1, seed=400)
        good_b = make_db(1, seed=401)
        with make_service(tmp_path, db) as service:
            with service.index:
                original = service._run_panel

                def flaky(requests, snapshot):
                    if any(r.tenant == "poison" for r in requests):
                        raise RuntimeError("poisoned query")
                    return original(requests, snapshot)

                service._run_panel = flaky  # type: ignore[method-assign]
                requests = [
                    service._validate(good_a, None, "ok"),
                    service._validate(good_a, None, "poison"),
                    service._validate(good_b, None, "ok"),
                ]
                outcomes = service._execute_batch(requests)
        assert outcomes[0] == oracle(good_a, [db], k=5)
        assert isinstance(outcomes[1], RuntimeError)
        assert outcomes[2] == oracle(good_b, [db], k=5)
        assert tracer.counters.get(SERVE_SOLO_FALLBACKS) == 3
        assert tracer.counters.get(SERVE_REQUEST_FAILURES) == 1

    def test_ledger_records_failures_per_tenant(self, tmp_path, tracer):
        db = make_db(20)
        q = make_db(1, seed=500)
        with make_service(tmp_path, db) as service:
            with service.index:
                def down(*args):
                    raise RuntimeError("down")

                service._run_panel = down  # type: ignore[method-assign]
                with pytest.raises(RuntimeError):
                    service.search(q, tenant="lab-a")
                summary = service.ledger.summary()
        assert summary["lab-a"]["queries"] == 1
        assert summary["lab-a"]["failures"] == 1


class TestIdentityServiceValidation:
    def test_rejects_bad_requests(self, tmp_path, tracer):
        db = make_db(20)
        with make_service(tmp_path, db) as service:
            with service.index:
                with pytest.raises(DatasetError, match="sites"):
                    service.search(make_db(1, sites=SITES + 8))
                with pytest.raises(DatasetError, match="non-empty"):
                    service.search(np.empty((0, SITES), dtype=np.uint8))
                with pytest.raises(DatasetError, match="k="):
                    service.search(make_db(1), k=0)
                with pytest.raises(DatasetError, match="tenant"):
                    service.search(make_db(1), tenant="")

    def test_rejects_bad_constructor_k(self, tmp_path):
        db = make_db(10)
        index = ProfileIndex.build(tmp_path, db, shard_rows=8)
        with index:
            with pytest.raises(DatasetError, match="k="):
                IdentityService(index, k=0)

    def test_submit_after_close_raises(self, tmp_path, tracer):
        db = make_db(10)
        service = make_service(tmp_path, db)
        with service.index:
            service.close()
            with pytest.raises(ConfigurationError, match="closed"):
                service.search(make_db(1))

    def test_search_many_empty_is_empty(self, tmp_path, tracer):
        with make_service(tmp_path, make_db(10)) as service:
            with service.index:
                assert service.search_many([]) == []


# -- tenant accounting ----------------------------------------------------------


class TestAccounting:
    def test_stats_reports_tenants_and_counters(self, tmp_path, tracer):
        db = make_db(30)
        with make_service(tmp_path, db, shard_rows=16) as service:
            with service.index:
                service.search(make_db(1, seed=600), tenant="lab-a")
                service.search(make_db(2, seed=601), tenant="lab-b")
                stats = service.stats()
        assert stats["index"]["n_rows"] == 30
        assert stats["index"]["segments"] == 2
        tenants = stats["tenants"]
        assert tenants["lab-a"]["queries"] == 1
        assert tenants["lab-b"]["rows"] == 2
        assert tenants["lab-a"]["p99_s"] > 0.0
        assert stats["counters"][SERVE_QUERIES] == 2

    def test_latency_window_percentiles(self):
        window = LatencyWindow(maxlen=8)
        assert window.percentile(99) == 0.0  # empty window
        for v in (0.01, 0.02, 0.03, 0.04):
            window.observe(v)
        assert window.percentile(50) == pytest.approx(0.025)
        assert window.percentile(99) <= 0.04


# -- TCP front end --------------------------------------------------------------


class TestServer:
    def test_wire_round_trip(self, tmp_path, tracer):
        db = make_db(40, duplicates=2)
        queries = make_db(2, seed=700)
        expected = oracle(queries, [db], k=5)
        with make_service(tmp_path, db, window_s=0.01) as service:
            with service.index:
                with BackgroundServer(service) as (host, port):
                    with ServiceClient(host, port) as client:
                        assert client.ping()
                        assert client.search(queries, k=5) == expected
                        start, stop = client.append(make_db(3, seed=701))
                        assert (start, stop) == (40, 43)
                        stats = client.stats()
                        assert stats["index"]["n_rows"] == 43

    def test_wire_errors_keep_connection_usable(self, tmp_path, tracer):
        db = make_db(20)
        with make_service(tmp_path, db, window_s=0.01) as service:
            with service.index:
                with BackgroundServer(service) as (host, port):
                    with ServiceClient(host, port) as client:
                        with pytest.raises(ReproError, match="sites"):
                            client.search(make_db(1, sites=8))
                        with pytest.raises(ReproError, match="unknown op"):
                            client._call({"op": "nope"})
                        assert client.ping()  # still alive

    def test_concurrent_clients_coalesce_and_match_oracle(
        self, tmp_path, tracer
    ):
        db = make_db(60, duplicates=4)
        query_sets = [make_db(1, seed=800 + i) for i in range(6)]
        oracles = [oracle(q, [db], k=5) for q in query_sets]
        results = [None] * len(query_sets)
        with make_service(tmp_path, db, window_s=0.05) as service:
            with service.index:
                with BackgroundServer(service) as (host, port):
                    barrier = threading.Barrier(len(query_sets))

                    def worker(i):
                        with ServiceClient(host, port) as client:
                            barrier.wait()
                            results[i] = client.search(query_sets[i], k=5)

                    threads = [
                        threading.Thread(target=worker, args=(i,))
                        for i in range(len(query_sets))
                    ]
                    for t in threads:
                        t.start()
                    for t in threads:
                        t.join(timeout=60)
        assert results == oracles
        # Every request was served; concurrency makes the exact batch
        # split timing-dependent, so gate the row total, not the cut.
        assert tracer.counters.get(SERVE_BATCH_ROWS) == len(query_sets)
        assert tracer.counters.get(SERVE_BATCHES) >= 1


# -- live window behaviour -------------------------------------------------------


class TestLiveWindow:
    def test_submits_within_window_share_a_batch(self, tmp_path, tracer):
        db = make_db(30)
        query_sets = [make_db(1, seed=900 + i) for i in range(4)]
        with make_service(
            tmp_path, db, window_s=0.2, max_batch_rows=64
        ) as service:
            with service.index:
                futures = [service.submit(q) for q in query_sets]
                for future, q in zip(futures, query_sets):
                    assert future.result(timeout=30) == oracle(q, [db], k=5)
        assert tracer.counters.get(SERVE_BATCHES) == 1
        assert tracer.counters.get(SERVE_COALESCED_BATCHES) == 1

    def test_mid_batch_append_visible_after_barrier(self, tmp_path, tracer):
        """A query admitted after append() returned sees the new rows."""
        db = make_db(30)
        probe = make_db(1, seed=950)
        with make_service(
            tmp_path, db, k=31, window_s=0.05, shard_rows=16
        ) as service:
            with service.index:
                first = service.submit(make_db(1, seed=951))
                start, _stop = service.append(probe)
                second = service.submit(probe)
                first.result(timeout=30)
                matches = second.result(timeout=30)[0]
                assert any(
                    m.database_index == start and m.distance == 0
                    for m in matches
                )

    def test_window_bounds_added_latency(self, tmp_path, tracer):
        db = make_db(20)
        with make_service(tmp_path, db, window_s=0.02) as service:
            with service.index:
                begin = time.perf_counter()
                service.search(make_db(1, seed=960))
                elapsed = time.perf_counter() - begin
        assert elapsed < 10.0  # window closes; the request is not stuck
