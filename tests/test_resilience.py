"""Tests for repro.resilience: faults, retry, engine/multi-GPU tolerance.

Covers the fault-injection schedule language, the deterministic
injector, retry/backoff policy and classification, the engine's
degradation ladder (retry -> quarantine -> ShardExecutionError), spot
verification against bit flips, multi-GPU degraded mode, the chaos
harness, and the satellite hardening (streaming input validation,
tuner cache concurrent-writer merge).
"""

import json

import numpy as np
import pytest

from repro.blis.gemm import bit_gemm_reference
from repro.blis.microkernel import ComparisonOp
from repro.cli import main
from repro.core.config import Algorithm
from repro.core.framework import SNPComparisonFramework
from repro.core.streaming import StreamingIdentitySearch
from repro.errors import (
    AllocationError,
    ConfigurationError,
    DatasetError,
    FaultInjectedError,
    KernelLaunchError,
    ModelError,
    PackingError,
    ShardExecutionError,
)
from repro.multigpu.executor import run_multi_gpu
from repro.multigpu.system import QUAD_GTX980
from repro.parallel.engine import ParallelEngine
from repro.parallel.tuner import TUNING_FORMAT, TuningCache, TuningRecord
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    NULL_INJECTOR,
    ResilienceContext,
    ResilienceReport,
    RetryPolicy,
    call_with_retry,
    classify,
    get_resilience,
    resilient,
)
from repro.resilience.chaos import run_chaos_case
from repro.resilience.retry import Disposition
from repro.snp.generator import PopulationModel, generate_population
from repro.snp.io import write_snptxt
from repro.util.bitops import pack_bits


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(11)
    bits_a = (rng.random((48, 400)) < 0.4).astype(np.uint8)
    bits_b = (rng.random((40, 400)) < 0.5).astype(np.uint8)
    return pack_bits(bits_a, 32), pack_bits(bits_b, 32)


def fast_policy(**kwargs) -> RetryPolicy:
    """A retry policy that never sleeps (tests assert schedules instead)."""
    kwargs.setdefault("max_attempts", 4)
    kwargs.setdefault("base_delay_s", 0.0)
    kwargs.setdefault("jitter", 0.0)
    return RetryPolicy(**kwargs)


# -- spec language -------------------------------------------------------------


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="gamma-ray")

    def test_negative_target_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="shard", target=-1)

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="shard", count=0)

    def test_token_round_trip(self):
        for spec in (
            FaultSpec(kind="kernel"),
            FaultSpec(kind="shard", target=3),
            FaultSpec(kind="slow", target=1, count=2),
        ):
            plan = FaultPlan.from_spec(spec.to_token())
            assert plan.specs == (spec,)


class TestFaultPlan:
    def test_from_spec_parses_targets_counts_and_seed(self):
        plan = FaultPlan.from_spec("kernel:1, shard@0:2 ,slow@1,bitflip@0,seed=7")
        assert plan.seed == 7
        assert plan.count("kernel") == 1
        assert plan.count("shard") == 2
        assert plan.count("slow") == 1
        assert plan.count("bitflip") == 1
        assert plan.n_scheduled == 5

    def test_spec_round_trip(self):
        plan = FaultPlan.from_spec("kernel:2,shard@1:2,device@3,seed=9")
        assert FaultPlan.from_spec(plan.to_spec()) == plan

    @pytest.mark.parametrize(
        "bad", ["bogus", "kernel:x", "shard@y", "seed=z", "shard@1:0"]
    )
    def test_bad_tokens_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec(bad)

    def test_random_is_seed_deterministic(self):
        assert FaultPlan.random(42) == FaultPlan.random(42)
        assert FaultPlan.random(1) != FaultPlan.random(2)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_respects_target_bound(self, seed):
        plan = FaultPlan.random(seed, max_shard_target=1)
        for spec in plan.specs:
            if spec.kind in ("shard", "slow", "bitflip"):
                assert 0 <= spec.target <= 1


# -- injector ------------------------------------------------------------------


class TestFaultInjector:
    def test_kernel_fires_on_scheduled_ordinals_only(self):
        injector = FaultInjector(FaultPlan.from_spec("kernel@1:2"))
        injector.check("kernel")  # ordinal 0: clean
        with pytest.raises(FaultInjectedError):
            injector.check("kernel")  # ordinal 1
        with pytest.raises(FaultInjectedError):
            injector.check("kernel")  # ordinal 2
        injector.check("kernel")  # ordinal 3: past the burst
        assert injector.fired_count("kernel") == 2

    def test_device_fault_is_permanent(self):
        injector = FaultInjector(FaultPlan.from_spec("device@2"))
        injector.check("device", target=1)  # other device: clean
        for _ in range(3):  # lost devices never come back
            with pytest.raises(FaultInjectedError) as err:
                injector.check("device", target=2)
            assert err.value.kind == "device"

    def test_shard_sequence_consumes_shard_then_slow(self):
        sleeps = []
        plan = FaultPlan.from_spec("shard@0:2,slow@0:1")
        injector = FaultInjector(plan, sleep=sleeps.append)
        kinds = []
        for attempt in range(4):
            try:
                injector.check_shard(0, attempt)
                kinds.append("ok")
            except FaultInjectedError as exc:
                kinds.append(exc.kind)
        assert kinds == ["shard", "shard", "slow", "ok"]
        assert sleeps == [plan.slow_delay_s]
        injector.check_shard(1, 0)  # untargeted shard: clean
        assert injector.n_fired() == 3

    def test_corrupt_block_flips_one_value_within_budget(self):
        plan = FaultPlan.from_spec("bitflip@0,seed=5")
        block = np.arange(24, dtype=np.int64).reshape(4, 6)
        first = FaultInjector(plan).corrupt_block(block, 0)
        assert (first != block).sum() == 1
        # Deterministic: a second injector corrupts identically.
        assert np.array_equal(FaultInjector(plan).corrupt_block(block, 0), first)

    def test_corrupt_block_budget_exhausts(self):
        injector = FaultInjector(FaultPlan.from_spec("bitflip@0"))
        block = np.ones((3, 3), dtype=np.int64)
        assert not np.array_equal(injector.corrupt_block(block, 0), block)
        # Budget spent: subsequent calls pass the block through.
        assert np.array_equal(injector.corrupt_block(block, 0), block)
        # Untargeted shard never corrupted.
        assert np.array_equal(injector.corrupt_block(block, 1), block)

    def test_null_injector_is_inert(self):
        block = np.ones((2, 2), dtype=np.int64)
        NULL_INJECTOR.check("kernel")
        NULL_INJECTOR.check_shard(0, 0)
        assert NULL_INJECTOR.corrupt_block(block, 0) is block
        assert NULL_INJECTOR.n_fired() == 0
        assert not NULL_INJECTOR.enabled


# -- retry policy and classification -------------------------------------------


class TestRetryPolicy:
    def test_backoff_schedule_is_seed_deterministic(self):
        a = RetryPolicy(max_attempts=5, seed=3)
        b = RetryPolicy(max_attempts=5, seed=3)
        assert [a.backoff_delay(i) for i in range(4)] == [
            b.backoff_delay(i) for i in range(4)
        ]

    def test_backoff_grows_and_caps_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=8,
            base_delay_s=0.001,
            multiplier=2.0,
            max_delay_s=0.004,
            jitter=0.0,
        )
        delays = [policy.backoff_delay(i) for i in range(4)]
        assert delays == [0.001, 0.002, 0.004, 0.004]

    def test_wait_uses_injected_sleep(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=3,
            base_delay_s=0.5,
            max_delay_s=2.0,
            jitter=0.0,
            sleep=slept.append,
        )
        policy.wait(0)
        policy.wait(1)
        assert slept == [0.5, 1.0]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"jitter": 2.0},
            {"multiplier": 0.5},
            {"base_delay_s": -1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestClassify:
    @pytest.mark.parametrize("kind", ["kernel", "alloc", "shard", "slow"])
    def test_injected_transients_retry(self, kind):
        exc = FaultInjectedError("x", kind=kind, target=0, attempt=0)
        assert classify(exc) is Disposition.RETRY

    def test_device_lost_degrades(self):
        exc = FaultInjectedError("x", kind="device", target=0, attempt=0)
        assert classify(exc) is Disposition.DEGRADE

    def test_allocation_error_retries(self):
        assert classify(AllocationError("oom")) is Disposition.RETRY

    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError("x"),
            PackingError("x"),
            DatasetError("x"),
            ModelError("x"),
            KernelLaunchError("x"),
            ValueError("x"),
        ],
    )
    def test_everything_else_is_fatal(self, exc):
        assert classify(exc) is Disposition.FATAL


class TestCallWithRetry:
    def test_recovers_after_transient_failures(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise FaultInjectedError(
                    "t", kind="alloc", target=0, attempt=len(calls)
                )
            return "ok"

        seen = []
        result = call_with_retry(
            flaky, fast_policy(), on_retry=lambda i, e: seen.append(i)
        )
        assert result == "ok"
        assert len(calls) == 3
        assert seen == [0, 1]

    def test_exhausted_budget_raises_last_error(self):
        def always():
            raise FaultInjectedError("t", kind="shard", target=0, attempt=0)

        with pytest.raises(FaultInjectedError):
            call_with_retry(always, fast_policy(max_attempts=2))

    def test_fatal_error_is_not_retried(self):
        calls = []

        def fatal():
            calls.append(1)
            raise DatasetError("bad data")

        with pytest.raises(DatasetError):
            call_with_retry(fatal, fast_policy())
        assert len(calls) == 1


# -- context -------------------------------------------------------------------


class TestResilienceContext:
    def test_default_context_is_inactive(self):
        assert not ResilienceContext().active
        assert not get_resilience().active

    def test_activation_criteria(self):
        assert ResilienceContext(policy=fast_policy(max_attempts=2)).active
        assert ResilienceContext(verify_sample=0.5).active
        plan = FaultPlan.from_spec("kernel:1")
        assert ResilienceContext(injector=FaultInjector(plan)).active

    def test_verify_sample_validated(self):
        with pytest.raises(ConfigurationError):
            ResilienceContext(verify_sample=1.5)

    def test_should_verify_extremes_and_determinism(self):
        assert not ResilienceContext(verify_sample=0.0).should_verify(0)
        assert ResilienceContext(verify_sample=1.0).should_verify(7)
        ctx = ResilienceContext(verify_sample=0.5, verify_seed=3)
        picks = [ctx.should_verify(i) for i in range(64)]
        assert picks == [ctx.should_verify(i) for i in range(64)]
        assert any(picks) and not all(picks)

    def test_resilient_scope_restores_previous(self):
        before = get_resilience()
        with resilient(plan="kernel:1") as ctx:
            assert get_resilience() is ctx
            assert ctx.active
        assert get_resilience() is before


class TestResilienceReport:
    def test_clean_and_combine(self):
        assert ResilienceReport().clean
        total = ResilienceReport.combine(
            [
                ResilienceReport(faults_injected=1, retries=2),
                ResilienceReport(quarantined=1, devices_dropped=3),
            ]
        )
        assert not total.clean
        assert (total.faults_injected, total.retries) == (1, 2)
        assert (total.quarantined, total.devices_dropped) == (1, 3)

    def test_summary_mentions_fired_events(self):
        report = ResilienceReport(
            faults_injected=1,
            events=(
                __import__(
                    "repro.resilience.faults", fromlist=["FiredFault"]
                ).FiredFault(kind="shard", target=0, attempt=0, site="shard"),
            ),
        )
        assert "shard@0#0" in str(report)


# -- engine degradation ladder -------------------------------------------------


class TestEngineResilience:
    def test_transient_shard_faults_retry_to_bit_exact(self, operands):
        a, b = operands
        reference = bit_gemm_reference(a, b, ComparisonOp.AND)
        engine = ParallelEngine(workers=2, strategy="gemm")
        with resilient(plan="shard@0:2,slow@1:1", policy=fast_policy()):
            c, report = engine.run(a, b, ComparisonOp.AND, force_parallel=True)
        assert np.array_equal(c, reference)
        res = report.resilience
        assert res is not None
        assert res.faults_injected == 3
        assert res.retries == 3
        assert res.quarantined == 0
        assert report.n_retries == 3

    def test_exhausted_budget_quarantines_bit_exact(self, operands):
        a, b = operands
        reference = bit_gemm_reference(a, b, ComparisonOp.XOR)
        engine = ParallelEngine(workers=2, strategy="gemm")
        with resilient(
            plan="shard@0:3", policy=fast_policy(max_attempts=2)
        ):
            c, report = engine.run(a, b, ComparisonOp.XOR, force_parallel=True)
        assert np.array_equal(c, reference)
        assert report.n_quarantined == 1
        assert report.resilience.quarantined == 1
        profile = report.shard_profiles[0]
        assert profile.quarantined and profile.retries == 1

    def test_quarantine_disabled_raises_shard_error(self, operands):
        a, b = operands
        engine = ParallelEngine(workers=2, strategy="gemm")
        with resilient(
            plan="shard@0:3",
            policy=fast_policy(max_attempts=2, quarantine=False),
        ):
            with pytest.raises(ShardExecutionError) as err:
                engine.run(a, b, ComparisonOp.AND, force_parallel=True)
        assert err.value.shard_id == 0
        assert "after 2 attempt(s)" in str(err.value)

    def test_bitflip_caught_by_spot_verification(self, operands):
        a, b = operands
        reference = bit_gemm_reference(a, b, ComparisonOp.AND)
        engine = ParallelEngine(workers=2, strategy="gemm")
        with resilient(plan="bitflip@0,seed=3", verify_sample=1.0):
            c, report = engine.run(a, b, ComparisonOp.AND, force_parallel=True)
        assert np.array_equal(c, reference)
        res = report.resilience
        assert res.verify_mismatches == 1
        assert res.tiles_verified == len(report.shard_profiles)

    def test_bitflip_unverified_corrupts_silently(self, operands):
        # The negative control: without verification the flip lands --
        # proving the guard (not luck) restores bit-exactness above.
        a, b = operands
        reference = bit_gemm_reference(a, b, ComparisonOp.AND)
        engine = ParallelEngine(workers=2, strategy="gemm")
        with resilient(plan="bitflip@0,seed=3"):
            c, _ = engine.run(a, b, ComparisonOp.AND, force_parallel=True)
        assert not np.array_equal(c, reference)
        assert (c != reference).sum() == 1

    def test_serial_path_shares_the_fault_model(self, operands):
        a, b = operands
        reference = bit_gemm_reference(a, b, ComparisonOp.AND)
        engine = ParallelEngine(workers=1)
        with resilient(plan="shard@0:1", policy=fast_policy()):
            c, report = engine.run(a, b, ComparisonOp.AND)
        assert not report.used_parallel
        assert np.array_equal(c, reference)
        assert report.n_retries == 1
        assert report.resilience.faults_injected == 1

    def test_inactive_context_reports_no_resilience(self, operands):
        a, b = operands
        engine = ParallelEngine(workers=2, strategy="gemm")
        c, report = engine.run(a, b, ComparisonOp.AND, force_parallel=True)
        assert report.resilience is None
        assert np.array_equal(c, bit_gemm_reference(a, b, ComparisonOp.AND))


# -- framework-level hooks (kernel launches, allocations) ----------------------


class TestFrameworkResilience:
    @pytest.fixture(scope="class")
    def dataset(self):
        rng = np.random.default_rng(23)
        a = rng.integers(0, 2, size=(24, 256), dtype=np.uint8)
        b = rng.integers(0, 2, size=(16, 256), dtype=np.uint8)
        return a, b

    def test_kernel_launch_retry_is_bit_exact(self, dataset):
        a, b = dataset
        framework = SNPComparisonFramework("GTX 980", Algorithm.LD)
        reference, _ = framework.run(a, b)
        with resilient(plan="kernel:1", policy=fast_policy()):
            table, report = framework.run(a, b)
        assert np.array_equal(table, reference)
        res = report.resilience
        assert res is not None
        assert res.faults_injected == 1
        assert res.retries == 1

    def test_allocation_fault_retries_through_pipeline(self, dataset):
        a, b = dataset
        framework = SNPComparisonFramework("GTX 980", Algorithm.LD)
        reference, _ = framework.run(a, b)
        with resilient(plan="alloc:1", policy=fast_policy()):
            table, _ = framework.run(a, b)
        assert np.array_equal(table, reference)

    def test_allocation_fault_fatal_without_budget(self, dataset):
        a, b = dataset
        framework = SNPComparisonFramework("GTX 980", Algorithm.LD)
        with resilient(plan="alloc:1"):
            with pytest.raises(FaultInjectedError):
                framework.run(a, b)


# -- multi-GPU degraded mode ---------------------------------------------------


class TestMultiGPUDegradation:
    @pytest.fixture(scope="class")
    def dataset(self):
        rng = np.random.default_rng(31)
        a = rng.integers(0, 2, size=(8, 128), dtype=np.uint8)
        b = rng.integers(0, 2, size=(4096, 128), dtype=np.uint8)
        return a, b

    def test_lost_device_repartitions_bit_exact(self, dataset):
        a, b = dataset
        reference, ref_report = run_multi_gpu(QUAD_GTX980, "ld", a, b)
        assert ref_report.n_devices_used > 1  # the fault must have a target
        with resilient(plan="device@1"):
            table, report = run_multi_gpu(QUAD_GTX980, "ld", a, b)
        assert np.array_equal(table, reference)
        assert report.dropped_devices == [1]
        assert report.n_devices_used == ref_report.n_devices_used - 1
        res = report.resilience
        assert res is not None
        assert res.devices_dropped == 1
        assert res.faults_injected >= 1

    def test_all_devices_lost_raises(self, dataset):
        a, b = dataset
        spec = ",".join(f"device@{i}" for i in range(4))
        with resilient(plan=spec):
            with pytest.raises(ShardExecutionError, match="every device lost"):
                run_multi_gpu(QUAD_GTX980, "ld", a, b)


# -- chaos harness -------------------------------------------------------------


class TestChaos:
    @pytest.mark.parametrize("seed", [1, 4])
    def test_randomized_schedule_bit_exact_with_exact_counters(self, seed):
        # Default sizing keeps the run above the parallel crossover,
        # so shard-addressed faults have real shards to hit.
        result = run_chaos_case("identity", seed)
        assert result.bit_exact
        assert result.counters_match, (
            f"expected {result.expected}, observed {result.observed}"
        )
        assert result.passed

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigurationError):
            run_chaos_case("nosuch", 1)


# -- CLI flags -----------------------------------------------------------------


class TestCLIResilience:
    @pytest.fixture
    def dataset_file(self, tmp_path):
        ds = generate_population(PopulationModel(16, 48, block_size=8), rng=0)
        path = tmp_path / "panel.snptxt"
        write_snptxt(path, ds)
        return str(path)

    def test_ld_with_injection_recovers_and_reports(self, dataset_file, capsys):
        code = main(
            [
                "ld",
                "--input",
                dataset_file,
                "--inject-faults",
                "kernel:1,seed=2",
                "--retries",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "faults injected" in out

    def test_bad_fault_spec_is_a_usage_error(self, dataset_file):
        code = main(
            ["ld", "--input", dataset_file, "--inject-faults", "bogus-kind"]
        )
        assert code == 2


# -- satellite: streaming input validation -------------------------------------


class TestStreamingValidation:
    def make_search(self):
        rng = np.random.default_rng(2)
        queries = rng.integers(0, 2, size=(3, 64), dtype=np.uint8)
        return StreamingIdentitySearch(queries, k=2, device="GTX 980")

    def test_rejects_wrong_rank_queries(self):
        with pytest.raises(DatasetError, match="2-D"):
            StreamingIdentitySearch(np.ones(8, dtype=np.uint8))

    def test_rejects_float_queries(self):
        with pytest.raises(DatasetError, match="dtype"):
            StreamingIdentitySearch(np.ones((2, 8), dtype=np.float64))

    def test_rejects_nonbinary_queries(self):
        bad = np.full((2, 8), 2, dtype=np.uint8)
        with pytest.raises(DatasetError, match="non-binary"):
            StreamingIdentitySearch(bad)

    def test_accepts_bool_queries(self):
        search = StreamingIdentitySearch(np.ones((2, 64), dtype=bool))
        assert search.n_queries == 2

    def test_bad_batch_fails_before_state_mutation(self):
        search = self.make_search()
        good = np.zeros((4, 64), dtype=np.uint8)
        search.add_batch(good)
        before = [search.matches(i) for i in range(search.n_queries)]
        for bad in (
            np.ones(64, dtype=np.uint8),  # wrong rank
            np.ones((4, 64), dtype=np.float32),  # wrong dtype
            np.full((4, 64), 3, dtype=np.int64),  # non-binary
            np.full((4, 64), -1, dtype=np.int8),  # negative
        ):
            with pytest.raises(DatasetError):
                search.add_batch(bad)
        assert search.rows_seen == 4
        assert search.batches_seen == 1
        assert [search.matches(i) for i in range(search.n_queries)] == before


# -- satellite: tuner cache concurrent-writer merge ----------------------------


def make_record(best_seconds: float) -> TuningRecord:
    return TuningRecord(
        strategy="gemm",
        triangular=False,
        crossover_ops=None,
        best_seconds=best_seconds,
        candidates=2,
    )


class TestTunerCacheMerge:
    def test_interleaved_writers_lose_no_records(self, tmp_path):
        path = tmp_path / "tuning.json"
        writer_a = TuningCache(path)
        writer_b = TuningCache(path)
        # Both load the (empty) file, then tune different problems.
        writer_a.store("key-a", make_record(0.1))
        writer_b.store("key-b", make_record(0.2))
        writer_a.save()
        writer_b.save()  # without merging this would drop key-a
        fresh = TuningCache(path)
        assert fresh.lookup("key-a") is not None
        assert fresh.lookup("key-b") is not None
        # The second writer's in-memory view absorbed the merge too.
        assert writer_b.lookup("key-a") is not None

    def test_in_memory_record_supersedes_disk(self, tmp_path):
        path = tmp_path / "tuning.json"
        first = TuningCache(path)
        first.store("key", make_record(0.5))
        first.save()
        second = TuningCache(path)
        second.store("key", make_record(0.1))  # re-measurement wins
        second.save()
        assert TuningCache(path).lookup("key").best_seconds == 0.1

    def test_corrupt_disk_file_does_not_block_save(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text("{not json")
        cache = TuningCache(path)
        cache.store("key", make_record(0.3))
        cache.save()
        data = json.loads(path.read_text())
        assert data["format"] == TUNING_FORMAT
        assert "key" in data["records"]

    def test_foreign_format_records_not_merged(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text(
            json.dumps({"format": "other/1", "records": {"x": {}}})
        )
        cache = TuningCache(path)
        cache.store("key", make_record(0.3))
        cache.save()
        records = json.loads(path.read_text())["records"]
        assert set(records) == {"key"}
