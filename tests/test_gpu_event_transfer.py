"""Tests for repro.gpu.event and repro.gpu.transfer."""

import pytest

from repro.errors import DeviceError
from repro.gpu.arch import GTX_980
from repro.gpu.event import Event, EventStatus
from repro.gpu.transfer import D2H, H2D, TRANSFER_SETUP_S, TransferEngine


class TestEvent:
    def test_lifecycle(self):
        e = Event(label="k", queued_at=1.0)
        assert e.status is EventStatus.QUEUED
        e.complete(submitted_at=1.0, started_at=2.0, ended_at=3.5)
        assert e.status is EventStatus.COMPLETE
        assert e.duration == pytest.approx(1.5)
        assert e.latency == pytest.approx(2.5)

    def test_profiling_before_completion_rejected(self):
        e = Event(label="k", queued_at=0.0)
        with pytest.raises(DeviceError):
            _ = e.duration
        with pytest.raises(DeviceError):
            _ = e.latency

    def test_inverted_interval_rejected(self):
        e = Event(label="k", queued_at=0.0)
        with pytest.raises(DeviceError):
            e.complete(0.0, 2.0, 1.0)

    def test_repr(self):
        e = Event(label="x", queued_at=0.0)
        assert "pending" in repr(e)
        e.complete(0.0, 0.0, 1.0)
        assert "end=" in repr(e)


class TestTransferEngine:
    def test_transfer_time_formula(self):
        eng = TransferEngine(GTX_980)
        bw = GTX_980.memory.host_bandwidth_gbs * 1e9
        assert eng.transfer_time(bw) == pytest.approx(TRANSFER_SETUP_S + 1.0)
        assert eng.transfer_time(0) == pytest.approx(TRANSFER_SETUP_S)

    def test_negative_size_rejected(self):
        with pytest.raises(DeviceError):
            TransferEngine(GTX_980).transfer_time(-1)

    def test_same_direction_serializes(self):
        eng = TransferEngine(GTX_980)
        a = eng.schedule(H2D, 12_000_000_000, earliest_start=0.0)  # ~1 s
        b = eng.schedule(H2D, 12_000_000_000, earliest_start=0.0)
        assert b.start == pytest.approx(a.end)

    def test_directions_overlap(self):
        eng = TransferEngine(GTX_980)
        up = eng.schedule(H2D, 12_000_000_000, earliest_start=0.0)
        down = eng.schedule(D2H, 12_000_000_000, earliest_start=0.0)
        assert down.start == 0.0
        assert up.overlaps(down)

    def test_earliest_start_respected(self):
        eng = TransferEngine(GTX_980)
        iv = eng.schedule(D2H, 100, earliest_start=5.0)
        assert iv.start == 5.0

    def test_unknown_direction_rejected(self):
        with pytest.raises(DeviceError):
            TransferEngine(GTX_980).schedule("sideways", 10, 0.0)

    def test_busy_time_sums_directions(self):
        eng = TransferEngine(GTX_980)
        eng.schedule(H2D, 1200, 0.0)
        eng.schedule(D2H, 1200, 0.0)
        assert eng.busy_time() == pytest.approx(2 * eng.transfer_time(1200))
