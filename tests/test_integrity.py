"""On-disk integrity tests: SNPBIN02 CRCs, torn writes, fsck, chaos-serve.

Property-tests the detection guarantee of the checksummed ``.snpbin``
revision -- *any* truncation or bit flip anywhere in a v2 file
(header, data, CRC table) is caught by open or verification, exactly
counted in ``io.crc_failures`` -- plus SNPBIN01 backward compatibility
(loads fine, ``verified=False``), lazy chunk verification with
mmap-preserving reads, the fsck scan/quarantine flow and its CLI exit
codes, and the serve-tier chaos scenarios' gates.
"""

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DatasetError, IntegrityError
from repro.io_stream import (
    DEFAULT_CRC_CHUNK_ROWS,
    PackedDatasetReader,
    PackedDatasetWriter,
    fsck_directory,
    fsck_file,
    write_snpbin,
)
from repro.io_stream.format import SNPBIN2_HEADER_BYTES
from repro.observability.counters import IO_CHUNKS_VERIFIED, IO_CRC_FAILURES
from repro.observability.tracer import Tracer, set_tracer
from repro.serve import ProfileIndex


def _random_bits(rows, sites, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(rows, sites), dtype=np.uint8)


@pytest.fixture
def tracer():
    t = Tracer()
    previous = set_tracer(t)
    yield t
    set_tracer(previous)


def _write_v2(path, rows=37, sites=130, crc_chunk_rows=8, seed=3):
    bits = _random_bits(rows, sites, seed=seed)
    write_snpbin(path, bits, word_bits=64, crc_chunk_rows=crc_chunk_rows)
    return bits


# -- SNPBIN02 round trip and verification --------------------------------------


class TestSnpbin2RoundTrip:
    def test_round_trip_is_verified(self, tmp_path, tracer):
        path = tmp_path / "db.snpbin"
        bits = _write_v2(path, rows=37, crc_chunk_rows=8)
        with PackedDatasetReader(path) as reader:
            assert reader.version == 2
            assert reader.verified
            assert np.array_equal(reader.read_bits(0, 37), bits)
            # 37 rows / 8-row chunks -> 5 chunks, all touched.
            assert reader.chunks_verified == 5
        assert tracer.counters.get(IO_CHUNKS_VERIFIED) == 5
        assert tracer.counters.get(IO_CRC_FAILURES) == 0

    def test_lazy_verification_touches_only_read_chunks(self, tmp_path, tracer):
        path = tmp_path / "db.snpbin"
        _write_v2(path, rows=32, crc_chunk_rows=8)
        with PackedDatasetReader(path) as reader:
            reader.read_words(0, 8)  # chunk 0 only
            assert reader.chunks_verified == 1
            reader.read_words(4, 20)  # chunks 0..2; chunk 0 cached
            assert reader.chunks_verified == 3
            reader.read_words(0, 20)  # fully cached: no re-verification
        assert tracer.counters.get(IO_CHUNKS_VERIFIED) == 3

    def test_verify_false_opts_out(self, tmp_path, tracer):
        path = tmp_path / "db.snpbin"
        bits = _write_v2(path)
        with PackedDatasetReader(path, verify=False) as reader:
            assert not reader.verified
            assert np.array_equal(reader.read_bits(0, len(bits)), bits)
        assert tracer.counters.get(IO_CHUNKS_VERIFIED) == 0

    def test_chunked_writes_byte_identical_to_whole(self, tmp_path):
        bits = _random_bits(53, 200, seed=9)
        whole, parts = tmp_path / "whole.snpbin", tmp_path / "parts.snpbin"
        write_snpbin(whole, bits, word_bits=32, crc_chunk_rows=16)
        splits = (0, 5, 18, 19, 40, 53)
        with PackedDatasetWriter(
            parts, word_bits=32, crc_chunk_rows=16
        ) as writer:
            for a, b in zip(splits, splits[1:]):
                writer.append(bits[a:b])
        # Append granularity must not leak into chunk CRC boundaries.
        assert whole.read_bytes() == parts.read_bytes()

    def test_torn_write_detected_on_open(self, tmp_path):
        path = tmp_path / "torn.snpbin"
        writer = PackedDatasetWriter(path, word_bits=64, crc_chunk_rows=8)
        writer.append(_random_bits(12, 64))
        writer._fh.flush()
        # Crash before close(): the placeholder header's CRC guard is
        # deliberately inverted, so the open must refuse the file.
        with pytest.raises(IntegrityError, match="torn write"):
            PackedDatasetReader(path)
        writer.close()
        with PackedDatasetReader(path) as reader:
            assert reader.n_rows == 12


# -- corruption property tests -------------------------------------------------


class TestCorruptionDetection:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_any_bit_flip_is_detected(self, tmp_path_factory, data):
        tmp_path = tmp_path_factory.mktemp("flip")
        path = tmp_path / "db.snpbin"
        _write_v2(path, rows=37, sites=130, crc_chunk_rows=8)
        raw = bytearray(path.read_bytes())
        offset = data.draw(
            st.integers(min_value=0, max_value=len(raw) - 1), label="offset"
        )
        bit = data.draw(st.integers(min_value=0, max_value=7), label="bit")
        raw[offset] ^= 1 << bit
        path.write_bytes(bytes(raw))
        # Every flip -- header, data region, CRC table -- must surface
        # as a typed error from open or full verification, never as
        # silently different rows.
        with pytest.raises(DatasetError):
            with PackedDatasetReader(path) as reader:
                reader.verify_all()
        assert not fsck_file(path).ok

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_any_truncation_is_detected(self, tmp_path_factory, data):
        tmp_path = tmp_path_factory.mktemp("trunc")
        path = tmp_path / "db.snpbin"
        _write_v2(path, rows=37, sites=130, crc_chunk_rows=8)
        size = path.stat().st_size
        keep = data.draw(
            st.integers(min_value=0, max_value=size - 1), label="keep"
        )
        path.write_bytes(path.read_bytes()[:keep])
        with pytest.raises(DatasetError):
            with PackedDatasetReader(path) as reader:
                reader.verify_all()
        assert not fsck_file(path).ok

    def test_data_flip_counts_crc_failure_exactly(self, tmp_path, tracer):
        path = tmp_path / "db.snpbin"
        _write_v2(path, rows=16, crc_chunk_rows=8)
        raw = bytearray(path.read_bytes())
        raw[SNPBIN2_HEADER_BYTES + 3] ^= 0x10  # inside chunk 0's rows
        path.write_bytes(bytes(raw))
        with PackedDatasetReader(path) as reader:
            with pytest.raises(IntegrityError, match="chunk 0"):
                reader.read_words(0, 8)
            # Chunk 1 is intact and stays readable.
            reader.read_words(8, 16)
        assert tracer.counters.get(IO_CRC_FAILURES) == 1
        assert tracer.counters.get(IO_CHUNKS_VERIFIED) == 1


# -- SNPBIN01 backward compatibility -------------------------------------------


class TestV1Compatibility:
    def test_v1_loads_without_verification(self, tmp_path, tracer):
        path = tmp_path / "legacy.snpbin"
        bits = _random_bits(21, 90, seed=5)
        write_snpbin(path, bits, word_bits=64, version=1)
        with PackedDatasetReader(path) as reader:
            assert reader.version == 1
            assert not reader.verified
            assert reader.verify_all() == 0
            assert np.array_equal(reader.read_bits(0, 21), bits)
        assert tracer.counters.get(IO_CHUNKS_VERIFIED) == 0
        report = fsck_file(path)
        assert report.ok and not report.verified

    def test_index_mixes_v1_and_v2_shards(self, tmp_path):
        db = _random_bits(40, 64, seed=11)
        write_snpbin(
            tmp_path / "shard-000000.snpbin", db[:20], word_bits=64, version=1
        )
        write_snpbin(tmp_path / "shard-000001.snpbin", db[20:], word_bits=64)
        with ProfileIndex(tmp_path) as index:
            assert index.n_rows == 40
            stacked = np.vstack(list(index.iter_bits()))
        assert np.array_equal(stacked, db)


# -- fsck ----------------------------------------------------------------------


class TestFsck:
    def _corrupt(self, path):
        raw = bytearray(path.read_bytes())
        raw[SNPBIN2_HEADER_BYTES + 1] ^= 0x01
        path.write_bytes(bytes(raw))

    def test_directory_scan_and_quarantine(self, tmp_path):
        db = _random_bits(60, 64, seed=13)
        ProfileIndex.build(tmp_path, db, shard_rows=20).close()
        self._corrupt(tmp_path / "shard-000002.snpbin")
        report = fsck_directory(tmp_path, quarantine=True)
        assert (report.n_ok, report.n_corrupt) == (2, 1)
        assert not report.clean
        bad = [f for f in report.files if not f.ok]
        assert bad[0].quarantined_to.endswith(".snpbin.quarantined")
        assert not (tmp_path / "shard-000002.snpbin").exists()
        # The reopened index serves the healthy shards only.
        with ProfileIndex(tmp_path) as index:
            assert index.n_rows == 40
            stacked = np.vstack(list(index.iter_bits()))
        assert np.array_equal(stacked, db[:40])

    def test_scan_without_quarantine_leaves_files(self, tmp_path):
        db = _random_bits(40, 64, seed=14)
        ProfileIndex.build(tmp_path, db, shard_rows=20).close()
        self._corrupt(tmp_path / "shard-000001.snpbin")
        report = fsck_directory(tmp_path, quarantine=False)
        assert report.n_corrupt == 1
        assert (tmp_path / "shard-000001.snpbin").exists()

    def test_fsck_rejects_non_directory(self, tmp_path):
        with pytest.raises(DatasetError, match="not a directory"):
            fsck_directory(tmp_path / "missing")

    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        db = _random_bits(40, 64, seed=15)
        ProfileIndex.build(tmp_path, db, shard_rows=20).close()
        assert main(["fsck", str(tmp_path)]) == 0
        self._corrupt(tmp_path / "shard-000000.snpbin")
        assert main(["fsck", str(tmp_path), "--quarantine"]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out and "quarantined" in out
        assert main(["fsck", str(tmp_path)]) == 0  # healthy remainder


# -- serve-tier chaos scenarios -------------------------------------------------


class TestServeChaos:
    def test_default_crc_chunk_rows_sane(self):
        assert DEFAULT_CRC_CHUNK_ROWS == 4096

    def test_disk_corrupt_scenario_gates(self):
        from repro.serve.chaos import run_serve_chaos_case

        result = run_serve_chaos_case("disk-corrupt", seed=1)
        assert result.passed, result.summary()

    def test_latency_scenario_gates(self):
        from repro.serve.chaos import run_serve_chaos_case

        result = run_serve_chaos_case("latency", seed=1)
        assert result.passed, result.summary()
