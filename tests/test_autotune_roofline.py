"""Tests for repro.core.autotune and repro.model.roofline."""

import pytest

from repro.core.autotune import autotune, candidate_configs
from repro.core.config import Algorithm
from repro.core.planner import ProblemShape, derive_config, n_r_lower_bound
from repro.errors import ModelError
from repro.gpu.arch import ALL_GPUS, GTX_980, TITAN_V, VEGA_64
from repro.model.roofline import host_roofline, kernel_roofline


class TestCandidateEnumeration:
    def test_all_candidates_within_corridor(self):
        for arch in ALL_GPUS:
            cfg0 = derive_config(arch, Algorithm.LD)
            lower = n_r_lower_bound(arch)
            for cand in candidate_configs(arch, Algorithm.LD, cfg0.op):
                assert cand.n_r >= lower
                assert cand.n_r % arch.l_fn == 0
                assert cand.n_cores <= arch.n_c
                assert cand.m_c == cfg0.m_c and cand.k_c == cfg0.k_c

    def test_candidate_count_reasonable(self):
        cands = candidate_configs(GTX_980, Algorithm.LD,
                                  derive_config(GTX_980, Algorithm.LD).op)
        assert 10 < len(cands) < 5000


class TestAutotune:
    @pytest.mark.parametrize("arch", ALL_GPUS, ids=lambda a: a.name)
    def test_never_worse_than_published(self, arch):
        # The published config is in (or dominated by) the search
        # space, so the tuner can never lose to it under the model.
        problem = ProblemShape(m=8192, n=8192, k_bits=10_000)
        result = autotune(arch, Algorithm.LD, problem)
        assert result.modeled_seconds <= result.published_seconds * (1 + 1e-9)
        assert result.gain_over_published >= 1.0 - 1e-9
        assert result.candidates_evaluated > 10

    def test_fastid_shape_respects_query_parallelism(self):
        problem = ProblemShape(m=32, n=1_000_000, k_bits=1024)
        result = autotune(TITAN_V, Algorithm.FASTID_IDENTITY, problem)
        # 32 queries hold only 8 micro-panel rows: more grid rows than
        # that would idle cores, and the database dimension must absorb
        # (nearly) the whole device.
        assert result.config.grid_rows <= 8
        assert result.config.n_cores >= TITAN_V.n_c // 2

    def test_tiny_problem_uses_few_cores(self):
        problem = ProblemShape(m=8, n=100, k_bits=512)
        result = autotune(GTX_980, Algorithm.LD, problem)
        # 2 micro-panel rows x (at most) 2 n_r column units: more than
        # 4 cores can never be busy, and the tuner must notice.
        assert result.config.n_cores <= 4

    def test_skip_published_comparison(self):
        problem = ProblemShape(m=512, n=512, k_bits=1000)
        result = autotune(VEGA_64, Algorithm.LD, problem, compare_published=False)
        assert result.published_seconds is None
        assert result.gain_over_published is None

    def test_string_algorithm(self):
        result = autotune(
            GTX_980, "fastid_identity", ProblemShape(m=32, n=10_000, k_bits=512)
        )
        assert result.config.op.value == "xor"


class TestKernelRoofline:
    def test_ld_kernel_is_compute_bound_on_nvidia(self):
        # m_c = 32 gives ~0.146 bytes/op against 185-560 GB/s: the
        # POPC pipes bind long before memory.
        for arch in (GTX_980, TITAN_V):
            point = kernel_roofline(arch, m_c=32, n_per_core=2048, k_words=320)
            assert point.bound == "compute"

    def test_vega_sits_near_its_ridge(self):
        # Vega's huge ALU peak against derated HBM: the kernel lands
        # near the ridge, consistent with its observed contention.
        point = kernel_roofline(VEGA_64, m_c=32, n_per_core=8192, k_words=1280)
        ratio = point.arithmetic_intensity / point.ridge_intensity
        assert 0.5 < ratio < 2.0

    def test_small_tile_becomes_bandwidth_bound(self):
        point = kernel_roofline(TITAN_V, m_c=4, n_per_core=64, k_words=32)
        assert point.bound == "bandwidth"

    def test_attainable_below_both_ceilings(self):
        point = kernel_roofline(GTX_980, m_c=32, n_per_core=1024, k_words=128)
        assert point.attainable_ops <= point.compute_peak_ops
        assert point.attainable_ops <= (
            point.arithmetic_intensity * point.bandwidth_bytes_per_s
        )

    def test_intensity_grows_with_tile_height(self):
        low = kernel_roofline(GTX_980, m_c=8, n_per_core=1024, k_words=128)
        high = kernel_roofline(GTX_980, m_c=32, n_per_core=1024, k_words=128)
        assert high.arithmetic_intensity > low.arithmetic_intensity

    def test_validation(self):
        with pytest.raises(ModelError):
            kernel_roofline(GTX_980, m_c=0, n_per_core=1, k_words=1)


class TestHostRoofline:
    def test_fig8_regime_is_host_bandwidth_bound(self):
        # 32 queries: the end-to-end FastID pipeline starves on PCIe.
        point = host_roofline(TITAN_V, m=32, k_words=32)
        assert point.bound == "bandwidth"
        assert point.attainable_ops < 0.05 * point.compute_peak_ops

    def test_large_query_sets_become_compute_bound(self):
        # Intensity saturates at min(m, k_words)/4 ops per byte (the
        # C write-back charges 4 bytes per query-row pair), so escaping
        # the host-bandwidth ceiling needs *both* dimensions large.
        point = host_roofline(TITAN_V, m=100_000, k_words=2048)
        assert point.bound == "compute"

    def test_headroom_in_unit_interval(self):
        point = host_roofline(GTX_980, m=32, k_words=32)
        assert 0 < point.headroom <= 1.0

    def test_validation(self):
        with pytest.raises(ModelError):
            host_roofline(GTX_980, m=0, k_words=4)
