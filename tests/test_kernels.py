"""Tests for the kernel ABI (:mod:`repro.kernels`): backend conformance,
registry resolution, engine/tuner integration, and the CLI flag."""

import os

import numpy as np
import pytest

from repro.blis.gemm import bit_gemm_backend, bit_gemm_reference
from repro.blis.microkernel import ComparisonOp
from repro.errors import ConfigurationError, PackingError
from repro.kernels import (
    DEFAULT_BACKEND_NAME,
    OPCODES,
    REPRO_BACKEND_ENV,
    BackendInfo,
    KernelBackend,
    NumbaBackend,
    available_backends,
    backend_available,
    backend_fingerprint,
    backend_names,
    canonicalize_words,
    check_panel_operands,
    env_backend_name,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
    resolve_backend_name,
)
from repro.kernels.numba_backend import HAVE_NUMBA, _python_panel
from repro.observability.counters import GEMM_CALLS, GEMM_WORD_OPS
from repro.observability.tracer import Tracer, set_tracer
from repro.parallel.engine import ParallelEngine
from repro.parallel.tuner import TuningCache, TuningRecord, tuning_key
from repro.util.bitops import popcount

ALL_OPS = [
    ComparisonOp.AND,
    ComparisonOp.XOR,
    ComparisonOp.ANDNOT,
    ComparisonOp.AND_PRENEGATED,
]

WORD_DTYPES = [np.uint8, np.uint16, np.uint32, np.uint64]


def make_words(m, k, dtype, seed=0):
    rng = np.random.default_rng(seed)
    info = np.iinfo(dtype)
    return rng.integers(0, int(info.max) + 1, size=(m, k), dtype=dtype)


@pytest.fixture
def clean_env(monkeypatch):
    monkeypatch.delenv(REPRO_BACKEND_ENV, raising=False)


# -- ABI conformance: every registered backend ----------------------------------


class TestBackendConformance:
    def test_registry_has_builtins(self):
        names = backend_names()
        for expected in ("numpy", "numba", "cnative", "sim"):
            assert expected in names
        assert DEFAULT_BACKEND_NAME in names

    def test_info_descriptors_are_wellformed(self):
        for backend in registered_backends():
            info = backend.info
            assert isinstance(info, BackendInfo)
            assert info.name and info.kind and info.version
            assert info.kind in ("reference", "jit", "native", "simulated")
            if not info.available:
                assert info.unavailable_reason

    def test_reference_backend_always_available(self):
        info = get_backend(DEFAULT_BACKEND_NAME).info
        assert info.available
        assert not info.compiled
        assert info.tunable

    @pytest.mark.parametrize("op", ALL_OPS)
    @pytest.mark.parametrize("dtype", WORD_DTYPES)
    def test_panel_bit_exact_vs_reference(self, op, dtype):
        a = make_words(7, 5, dtype, seed=1)
        b = make_words(9, 5, dtype, seed=2)
        expected = bit_gemm_reference(a, b, op)
        for backend in available_backends():
            got = backend.bit_gemm_panel(a, b, op)
            assert got.dtype == np.int64
            assert np.array_equal(got, expected), backend.info.name

    @pytest.mark.parametrize("shape", [(0, 4, 3), (4, 0, 3), (4, 4, 0), (0, 0, 0)])
    def test_panel_empty_extents(self, shape):
        m, n, k = shape
        a = make_words(m, k, np.uint64)
        b = make_words(n, k, np.uint64)
        for backend in available_backends():
            got = backend.bit_gemm_panel(a, b, ComparisonOp.XOR)
            assert got.shape == (m, n), backend.info.name
            assert got.dtype == np.int64

    def test_panel_ragged_tail_words(self):
        # k not a multiple of the uint64 canonicalisation width.
        for k in (1, 3, 5, 7):
            a = make_words(6, k, np.uint16, seed=k)
            b = make_words(4, k, np.uint16, seed=k + 100)
            expected = bit_gemm_reference(a, b, ComparisonOp.AND)
            for backend in available_backends():
                got = backend.bit_gemm_panel(a, b, ComparisonOp.AND)
                assert np.array_equal(got, expected), (backend.info.name, k)

    def test_panel_validates_operands(self):
        a = make_words(4, 3, np.uint32)
        for backend in available_backends():
            with pytest.raises(PackingError):
                backend.bit_gemm_panel(a, make_words(4, 5, np.uint32))
            with pytest.raises(PackingError):
                backend.bit_gemm_panel(a, make_words(4, 3, np.uint64))
            with pytest.raises(PackingError):
                backend.bit_gemm_panel(a.astype(np.int64), a)

    def test_pack_matches_reference_packer(self):
        rng = np.random.default_rng(3)
        bits = (rng.random((5, 70)) < 0.5).astype(np.uint8)
        reference = get_backend(DEFAULT_BACKEND_NAME).pack(bits)
        for backend in available_backends():
            assert np.array_equal(backend.pack(bits), reference)

    def test_popcount_reduce_exact(self):
        words = make_words(6, 9, np.uint64, seed=5)
        expected_total = int(popcount(words).sum())
        expected_rows = popcount(words).sum(axis=1)
        for backend in available_backends():
            assert backend.popcount_reduce(words) == expected_total
            assert np.array_equal(
                backend.popcount_reduce(words, axis=1), expected_rows
            )


# -- registry + resolution -------------------------------------------------------


class TestRegistry:
    def test_get_backend_unknown_raises_with_listing(self):
        with pytest.raises(ConfigurationError, match="registered"):
            get_backend("warp")

    def test_register_backend_duplicate_requires_replace(self):
        numpy_backend = get_backend("numpy")
        with pytest.raises(ConfigurationError):
            register_backend(numpy_backend)
        register_backend(numpy_backend, replace=True)  # restores itself

    def test_backend_available(self):
        assert backend_available("numpy")
        assert not backend_available("missing")

    def test_resolve_explicit_and_auto(self, clean_env):
        assert resolve_backend_name(None) == DEFAULT_BACKEND_NAME
        assert resolve_backend_name("auto") == DEFAULT_BACKEND_NAME
        assert resolve_backend_name("numpy") == "numpy"
        assert resolve_backend("numpy").info.name == "numpy"
        with pytest.raises(ConfigurationError):
            resolve_backend_name("nope")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(REPRO_BACKEND_ENV, "numpy")
        assert env_backend_name() == "numpy"
        assert resolve_backend_name("auto") == "numpy"
        monkeypatch.setenv(REPRO_BACKEND_ENV, "auto")
        assert env_backend_name() is None
        monkeypatch.setenv(REPRO_BACKEND_ENV, "bogus")
        with pytest.raises(ConfigurationError):
            env_backend_name()

    def test_fingerprint_lists_tunable_backends(self):
        fp = backend_fingerprint()
        assert "numpy=" in fp
        assert "sim" not in fp  # not tunable, not fingerprinted


# -- canonicalisation ------------------------------------------------------------


class TestCanonicalize:
    @pytest.mark.parametrize("dtype", [np.uint8, np.uint16, np.uint32])
    def test_popcount_preserved(self, dtype):
        w = make_words(5, 7, dtype, seed=11)
        canon = canonicalize_words(w)
        assert canon.dtype == np.uint64
        assert int(popcount(canon).sum()) == int(popcount(w).sum())

    def test_uint64_passthrough(self):
        w = make_words(3, 4, np.uint64)
        assert canonicalize_words(w) is w or np.shares_memory(
            canonicalize_words(w), w
        )

    def test_pairwise_ops_preserved(self):
        a = make_words(4, 6, np.uint8, seed=21)
        b = make_words(3, 6, np.uint8, seed=22)
        ca, cb = canonicalize_words(a), canonicalize_words(b)
        for op in ALL_OPS:
            expected = bit_gemm_reference(a, b, op)
            got = bit_gemm_reference(ca, cb, op)
            assert np.array_equal(got, expected), op


# -- numba backend fallback ------------------------------------------------------


class TestNumbaFallback:
    def test_python_panel_matches_reference(self):
        a = canonicalize_words(make_words(5, 3, np.uint64, seed=31))
        b = canonicalize_words(make_words(6, 3, np.uint64, seed=32))
        for op, code in OPCODES.items():
            expected = bit_gemm_reference(a, b, op)
            assert np.array_equal(_python_panel(a, b, code), expected)

    def test_backend_reports_fallback_capabilities(self):
        info = get_backend("numba").info
        assert info.available  # python fallback keeps it available
        assert info.compiled == HAVE_NUMBA
        assert info.tunable == HAVE_NUMBA


# -- bit_gemm_backend driver -----------------------------------------------------


class TestBitGemmBackendDriver:
    def test_matches_reference_and_counts(self, clean_env):
        a = make_words(8, 4, np.uint32, seed=41)
        b = make_words(6, 4, np.uint32, seed=42)
        expected = bit_gemm_reference(a, b, ComparisonOp.XOR)
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            got = bit_gemm_backend(a, b, ComparisonOp.XOR)
        finally:
            set_tracer(previous)
        assert np.array_equal(got, expected)
        snapshot = tracer.counters.snapshot()
        assert snapshot[GEMM_CALLS] == 1
        assert snapshot[GEMM_WORD_OPS] == 8 * 6 * 4

    def test_word_op_accounting_is_backend_invariant(self):
        a = make_words(5, 3, np.uint64, seed=51)
        b = make_words(7, 3, np.uint64, seed=52)
        snapshots = []
        for backend in available_backends():
            if not backend.info.tunable and backend.info.name != "sim":
                continue
            tracer = Tracer()
            previous = set_tracer(tracer)
            try:
                bit_gemm_backend(a, b, backend=backend.info.name)
            finally:
                set_tracer(previous)
            snap = tracer.counters.snapshot()
            snapshots.append(
                (snap.get(GEMM_CALLS), snap.get(GEMM_WORD_OPS))
            )
        assert len(set(snapshots)) == 1

    def test_unknown_backend_raises(self):
        a = make_words(2, 2, np.uint32)
        with pytest.raises(ConfigurationError):
            bit_gemm_backend(a, a, backend="warp")


# -- engine integration ----------------------------------------------------------


class TestEngineBackends:
    def test_ctor_validates_backend(self):
        with pytest.raises(ConfigurationError):
            ParallelEngine(workers=1, backend="warp")

    def test_sharded_backend_bit_exact(self, clean_env):
        a = make_words(24, 8, np.uint32, seed=61)
        b = make_words(32, 8, np.uint32, seed=62)
        expected = bit_gemm_reference(a, b, ComparisonOp.AND)
        for backend in available_backends():
            if not backend.info.tunable:
                continue
            name = backend.info.name
            engine = ParallelEngine(workers=2, strategy="gemm", backend=name)
            try:
                table, report = engine.run(
                    a, b, ComparisonOp.AND, force_parallel=True
                )
            finally:
                engine.shutdown()
            assert np.array_equal(table, expected), name
            assert report.backend == name
            if name != DEFAULT_BACKEND_NAME:
                assert report.strategy == "panel"

    def test_serial_backend_bit_exact(self, clean_env):
        a = make_words(4, 3, np.uint32, seed=63)
        b = make_words(5, 3, np.uint32, seed=64)
        expected = bit_gemm_reference(a, b, ComparisonOp.ANDNOT)
        for backend in available_backends():
            if not backend.info.tunable:
                continue
            name = backend.info.name
            engine = ParallelEngine(workers=1, backend=name)
            try:
                table, report = engine.run(a, b, ComparisonOp.ANDNOT)
            finally:
                engine.shutdown()
            assert np.array_equal(table, expected), name
            assert report.backend == name
            if name != DEFAULT_BACKEND_NAME:
                assert report.strategy == "serial-panel"

    def test_serial_symmetric_stays_on_reference(self, clean_env):
        # Gram-mode serial runs keep the reference triangular walk so
        # mirrored-shard counters never drift across backend legs.
        a = make_words(6, 3, np.uint32, seed=65)
        for backend in available_backends():
            if not backend.info.tunable:
                continue
            engine = ParallelEngine(workers=1, backend=backend.info.name)
            try:
                table, report = engine.run(
                    a, a, ComparisonOp.AND, symmetric=True
                )
            finally:
                engine.shutdown()
            assert report.backend == DEFAULT_BACKEND_NAME
            assert np.array_equal(
                table, bit_gemm_reference(a, a, ComparisonOp.AND)
            )

    def test_env_backend_steers_auto(self, monkeypatch):
        monkeypatch.setenv(REPRO_BACKEND_ENV, DEFAULT_BACKEND_NAME)
        a = make_words(16, 4, np.uint32, seed=66)
        engine = ParallelEngine(workers=2, strategy="gemm")
        try:
            _, report = engine.run(
                a, a, ComparisonOp.XOR, force_parallel=True, symmetric=False
            )
        finally:
            engine.shutdown()
        assert report.backend == DEFAULT_BACKEND_NAME


# -- tuner integration -----------------------------------------------------------


class TestTunerBackendKeying:
    def test_tuning_key_embeds_fingerprint(self):
        key = tuning_key(ComparisonOp.AND, 64, 64, 8, 64, 2)
        assert f"|be[{backend_fingerprint()}]" in key

    def test_record_roundtrips_backend(self):
        record = TuningRecord("panel", False, None, 0.25, 6, backend="numba")
        assert TuningRecord.from_json(record.to_json()) == record

    def test_legacy_record_defaults_to_reference(self):
        legacy = {
            "strategy": "gemm",
            "triangular": True,
            "crossover_ops": None,
            "best_seconds": 0.5,
            "candidates": 4,
        }
        assert TuningRecord.from_json(legacy).backend == DEFAULT_BACKEND_NAME

    def test_stale_backend_record_does_not_pin(self, tmp_path, monkeypatch,
                                               clean_env):
        # A tuning record naming a backend that is no longer available
        # must degrade to the reference backend, not crash or pin.
        from repro.parallel import tuner as tuner_mod

        cache = TuningCache(tmp_path / "tuning.json")
        a = make_words(16, 4, np.uint32, seed=71)
        b = make_words(24, 4, np.uint32, seed=72)
        key = tuning_key(ComparisonOp.AND, 16, 24, 4, 32, 2)
        cache.store(
            key,
            TuningRecord("panel", False, None, 0.001, 6, backend="ghost"),
        )
        cache.save()
        monkeypatch.setattr(tuner_mod, "get_tuning_cache", lambda: cache)
        engine = ParallelEngine(workers=2)
        try:
            table, report = engine.run(
                a, b, ComparisonOp.AND, force_parallel=True
            )
        finally:
            engine.shutdown()
        assert report.backend == DEFAULT_BACKEND_NAME
        assert np.array_equal(
            table, bit_gemm_reference(a, b, ComparisonOp.AND)
        )


# -- hypothesis property: all backends bit-exact ---------------------------------


class TestBackendProperties:
    def test_property_backends_match_reference(self):
        pytest.importorskip("hypothesis")
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=40, deadline=None)
        @given(
            m=st.integers(min_value=0, max_value=9),
            n=st.integers(min_value=0, max_value=9),
            k=st.integers(min_value=0, max_value=11),
            dtype=st.sampled_from(WORD_DTYPES),
            op=st.sampled_from(ALL_OPS),
            seed=st.integers(min_value=0, max_value=2**16),
        )
        def check(m, n, k, dtype, op, seed):
            a = make_words(m, k, dtype, seed=seed)
            b = make_words(n, k, dtype, seed=seed + 1)
            expected = bit_gemm_reference(a, b, op)
            for backend in available_backends():
                got = backend.bit_gemm_panel(a, b, op)
                assert np.array_equal(got, expected), backend.info.name

        check()


# -- CLI flag --------------------------------------------------------------------


class TestCliBackendFlag:
    def test_ld_command_accepts_backend(self, tmp_path, capsys, clean_env):
        from repro.cli import main
        from repro.snp.dataset import SNPDataset
        from repro.snp.io import write_snptxt

        rng = np.random.default_rng(81)
        dataset = SNPDataset(
            matrix=rng.integers(0, 2, size=(12, 32), dtype=np.uint8)
        )
        path = tmp_path / "pop.snptxt"
        write_snptxt(path, dataset)
        assert main(
            ["ld", "--input", str(path), "--backend", "numpy"]
        ) == 0
        capsys.readouterr()

    def test_backend_choices_come_from_registry(self):
        from repro.cli import build_parser

        parser = build_parser()
        # Unknown names are rejected at argparse level.
        with pytest.raises(SystemExit):
            parser.parse_args(["ld", "--input", "x", "--backend", "warp"])


def test_module_exports_are_importable():
    import repro.kernels as kernels

    for name in kernels.__all__:
        assert hasattr(kernels, name), name
    assert isinstance(get_backend("numba"), NumbaBackend)
    assert issubclass(NumbaBackend, KernelBackend)
