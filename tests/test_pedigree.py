"""Tests for repro.snp.pedigree and its interplay with the kinship screen."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.snp.kinship import ibs_matrix
from repro.snp.pedigree import Pedigree, expected_ibs


@pytest.fixture
def freqs():
    rng = np.random.default_rng(0)
    return np.clip(rng.beta(2, 3, size=800), 0.05, 0.5)


def build_family(freqs, seed=1):
    ped = Pedigree(frequencies=freqs, rng=seed)
    mom = ped.add_founder()
    dad = ped.add_founder()
    kid1 = ped.add_child(mom, dad)
    kid2 = ped.add_child(mom, dad)
    stranger = ped.add_founder()
    return ped, (mom, dad, kid1, kid2, stranger)


class TestPedigree:
    def test_founder_frequencies(self, freqs):
        ped = Pedigree(frequencies=freqs, rng=2)
        for _ in range(300):
            ped.add_founder()
        observed = ped.matrix().mean(axis=0)
        assert np.abs(observed - freqs).mean() < 0.03

    def test_relationship_records(self, freqs):
        ped, (mom, dad, kid1, kid2, stranger) = build_family(freqs)
        assert ped.relationship(mom, kid1) == "parent-child"
        assert ped.relationship(kid1, dad) == "parent-child"
        assert ped.relationship(kid1, kid2) == "siblings"
        assert ped.relationship(mom, dad) == "unrelated"
        assert ped.relationship(stranger, kid1) == "unrelated"
        assert ped.relationship(kid1, kid1) == "self"

    def test_unknown_parent_rejected(self, freqs):
        ped = Pedigree(frequencies=freqs)
        ped.add_founder()
        with pytest.raises(DatasetError):
            ped.add_child(0, 5)

    def test_invalid_frequencies_rejected(self):
        with pytest.raises(DatasetError):
            Pedigree(frequencies=np.array([1.5]))
        with pytest.raises(DatasetError):
            Pedigree(frequencies=np.zeros((2, 2)))

    def test_matrix_shape(self, freqs):
        ped, _ = build_family(freqs)
        assert ped.matrix().shape == (5, freqs.size)

    def test_empty_matrix(self, freqs):
        ped = Pedigree(frequencies=freqs)
        assert ped.matrix().shape == (0, freqs.size)

    def test_deterministic_with_seed(self, freqs):
        a = build_family(freqs, seed=9)[0].matrix()
        b = build_family(freqs, seed=9)[0].matrix()
        assert (a == b).all()


class TestKinshipOrdering:
    """The IBS ordering the screen must recover: kin > unrelated."""

    def test_parent_child_ibs_above_unrelated(self, freqs):
        # Average over several families to beat sampling noise.
        kin_vals, unrelated_vals = [], []
        for seed in range(6):
            ped, (mom, dad, kid1, kid2, stranger) = build_family(freqs, seed)
            result = ibs_matrix(ped.matrix(), device="GTX 980")
            kin_vals += [result.ibs[mom, kid1], result.ibs[dad, kid1],
                         result.ibs[kid1, kid2]]
            unrelated_vals += [result.ibs[mom, dad], result.ibs[stranger, kid1]]
        assert np.mean(kin_vals) > np.mean(unrelated_vals) + 0.03

    def test_expected_ibs_matches_simulation(self, freqs):
        sim_unrelated, sim_kin = [], []
        for seed in range(8):
            ped, (mom, dad, kid1, _, stranger) = build_family(freqs, seed + 100)
            result = ibs_matrix(ped.matrix(), device="Titan V")
            sim_unrelated.append(result.ibs[mom, dad])
            sim_kin.append(result.ibs[mom, kid1])
        assert np.mean(sim_unrelated) == pytest.approx(
            expected_ibs(freqs, "unrelated"), abs=0.02
        )
        assert np.mean(sim_kin) == pytest.approx(
            expected_ibs(freqs, "parent-child"), abs=0.03
        )

    def test_expected_ibs_ordering(self, freqs):
        assert (
            expected_ibs(freqs, "self")
            > expected_ibs(freqs, "parent-child")
            > expected_ibs(freqs, "unrelated")
        )

    def test_screen_flags_family_not_strangers(self, freqs):
        ped, (mom, dad, kid1, kid2, stranger) = build_family(freqs, seed=42)
        # Extra unrelated noise individuals.
        for _ in range(10):
            ped.add_founder()
        result = ibs_matrix(ped.matrix(), device="Vega 64")
        margin = (
            expected_ibs(freqs, "parent-child")
            - expected_ibs(freqs, "unrelated")
        ) / 2
        flagged = {frozenset(p[:2]) for p in result.related_pairs(min_excess=margin)}
        assert frozenset({mom, kid1}) in flagged
        assert frozenset({dad, kid2}) in flagged
        assert frozenset({mom, dad}) not in flagged

    def test_unknown_relationship_rejected(self, freqs):
        with pytest.raises(DatasetError):
            expected_ibs(freqs, "cousins")
