"""Tests for repro.selfcheck and its CLI wiring."""

import pytest

from repro.cli import main
from repro.selfcheck import CheckResult, render_selfcheck, run_selfcheck


class TestBattery:
    @pytest.fixture(scope="class")
    def results(self):
        return run_selfcheck()

    def test_all_checks_pass(self, results):
        failed = [r for r in results if not r.passed]
        assert not failed, failed

    def test_expected_check_names(self, results):
        names = {r.name for r in results}
        assert names == {
            "functional agreement",
            "estimator == functional timing",
            "microbenchmark recovery",
            "Table II regeneration",
            "Fig. 5 efficiency endpoints",
        }

    def test_details_populated(self, results):
        assert all(r.detail for r in results)


class TestRendering:
    def test_render_pass_and_fail(self):
        results = [
            CheckResult("alpha", True, "fine"),
            CheckResult("beta", False, "broken"),
        ]
        text = render_selfcheck(results)
        assert "[PASS] alpha" in text
        assert "[FAIL] beta" in text
        assert "1/2 checks passed" in text

    def test_exceptions_become_failures(self, monkeypatch):
        import repro.selfcheck as sc

        def boom():
            raise RuntimeError("injected")

        boom.__name__ = "_check_injected_failure"
        monkeypatch.setattr(sc, "_CHECKS", (boom,))
        results = sc.run_selfcheck()
        assert len(results) == 1
        assert not results[0].passed
        assert "injected" in results[0].detail


class TestCliVerify:
    def test_verify_exit_zero(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "5/5 checks passed" in out
