"""Property-based tests: the popcount-GEMM drivers agree everywhere."""

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.blis.blocking import BlockingPlan
from repro.blis.gemm import bit_gemm_blocked, bit_gemm_fast, bit_gemm_reference
from repro.blis.microkernel import ComparisonOp

ops = st.sampled_from(
    [ComparisonOp.AND, ComparisonOp.XOR, ComparisonOp.ANDNOT, ComparisonOp.AND_PRENEGATED]
)


@st.composite
def packed_pairs(draw):
    m = draw(st.integers(1, 10))
    n = draw(st.integers(1, 10))
    k = draw(st.integers(1, 8))
    a = draw(
        hnp.arrays(np.uint32, (m, k), elements=st.integers(0, 2**32 - 1))
    )
    b = draw(
        hnp.arrays(np.uint32, (n, k), elements=st.integers(0, 2**32 - 1))
    )
    return a, b


@st.composite
def blocking_plans(draw, m, n, k):
    m_r = draw(st.sampled_from([1, 2, 4]))
    m_c = m_r * draw(st.integers(1, 4))
    k_c = draw(st.integers(1, max(1, k)))
    n_r = draw(st.integers(1, 12))
    grid_rows = draw(st.integers(1, 3))
    grid_cols = draw(st.integers(1, 3))
    return BlockingPlan(
        m=m, n=n, k=k, m_c=m_c, k_c=k_c, m_r=m_r, n_r=n_r,
        grid_rows=grid_rows, grid_cols=grid_cols,
    )


class TestDriverAgreement:
    @settings(max_examples=60, deadline=None)
    @given(packed_pairs(), ops)
    def test_fast_equals_reference(self, pair, op):
        a, b = pair
        assert (bit_gemm_fast(a, b, op) == bit_gemm_reference(a, b, op)).all()

    @settings(max_examples=40, deadline=None)
    @given(packed_pairs(), ops, st.data())
    def test_blocked_equals_reference_any_plan(self, pair, op, data):
        a, b = pair
        plan = data.draw(blocking_plans(a.shape[0], b.shape[0], a.shape[1]))
        assert (
            bit_gemm_blocked(a, b, op, plan) == bit_gemm_reference(a, b, op)
        ).all()


class TestAlgebraicProperties:
    @settings(max_examples=40, deadline=None)
    @given(packed_pairs())
    def test_and_symmetric(self, pair):
        a, b = pair
        c_ab = bit_gemm_fast(a, b, ComparisonOp.AND)
        c_ba = bit_gemm_fast(b, a, ComparisonOp.AND)
        assert (c_ab == c_ba.T).all()

    @settings(max_examples=40, deadline=None)
    @given(packed_pairs())
    def test_xor_distance_axioms(self, pair):
        a, b = pair
        d = bit_gemm_fast(a, b, ComparisonOp.XOR)
        assert (d >= 0).all()
        # Self-distance along matching rows is zero.
        d_self = bit_gemm_fast(a, a, ComparisonOp.XOR)
        assert (np.diag(d_self) == 0).all()
        # Symmetry.
        assert (d_self == d_self.T).all()

    @settings(max_examples=40, deadline=None)
    @given(packed_pairs())
    def test_mixture_simplification_identity(self, pair):
        """popc((r^m) & r) == popc(r & ~m), the Section II-C identity."""
        r, m = pair
        fused = bit_gemm_fast(r, m, ComparisonOp.ANDNOT)
        # Direct evaluation of the unsimplified form.
        from repro.util.bitops import popcount

        direct = np.zeros_like(fused)
        for i in range(r.shape[0]):
            for j in range(m.shape[0]):
                direct[i, j] = popcount((r[i] ^ m[j]) & r[i]).sum()
        assert (fused == direct).all()

    @settings(max_examples=40, deadline=None)
    @given(packed_pairs())
    def test_prenegation_equivalence(self, pair):
        """AND against ~m equals ANDNOT against m (Section II-C)."""
        r, m = pair
        assert (
            bit_gemm_fast(r, np.bitwise_not(m), ComparisonOp.AND_PRENEGATED)
            == bit_gemm_fast(r, m, ComparisonOp.ANDNOT)
        ).all()

    @settings(max_examples=40, deadline=None)
    @given(packed_pairs())
    def test_xor_triangle_inequality(self, pair):
        a, b = pair
        if a.shape[0] < 2:
            return
        x, y = a[0:1], a[1:2]
        d_xy = bit_gemm_fast(x, y, ComparisonOp.XOR)[0, 0]
        for j in range(b.shape[0]):
            z = b[j : j + 1]
            d_xz = bit_gemm_fast(x, z, ComparisonOp.XOR)[0, 0]
            d_zy = bit_gemm_fast(z, y, ComparisonOp.XOR)[0, 0]
            assert d_xy <= d_xz + d_zy
