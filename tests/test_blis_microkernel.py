"""Tests for repro.blis.microkernel: op semantics and instruction mixes."""

import numpy as np
import pytest

from repro.blis.microkernel import (
    MICROKERNELS,
    ComparisonOp,
    get_microkernel,
)
from repro.errors import ModelError


class TestCombiners:
    a = np.array([0b1100, 0b1010], dtype=np.uint32)
    b = np.array([0b1010, 0b0110], dtype=np.uint32)

    def test_and(self):
        k = get_microkernel(ComparisonOp.AND)
        assert (k.combine(self.a, self.b) == [0b1000, 0b0010]).all()

    def test_xor(self):
        k = get_microkernel(ComparisonOp.XOR)
        assert (k.combine(self.a, self.b) == [0b0110, 0b1100]).all()

    def test_andnot(self):
        k = get_microkernel(ComparisonOp.ANDNOT)
        assert (k.combine(self.a, self.b) == [0b0100, 0b1000]).all()

    def test_and_prenegated_is_plain_and(self):
        k = get_microkernel(ComparisonOp.AND_PRENEGATED)
        assert (k.combine(self.a, self.b) == [0b1000, 0b0010]).all()

    def test_andnot_equals_prenegated_with_negated_operand(self):
        # The Section II-C equivalence at word level.
        k_fused = get_microkernel(ComparisonOp.ANDNOT)
        k_pre = get_microkernel(ComparisonOp.AND_PRENEGATED)
        assert (
            k_fused.combine(self.a, self.b)
            == k_pre.combine(self.a, np.bitwise_not(self.b))
        ).all()


class TestInstructionMixes:
    def test_and_mix(self):
        mix = get_microkernel(ComparisonOp.AND).mix
        assert (mix.alu, mix.popc) == (2, 1)  # AND + ADD, POPC

    def test_xor_mix(self):
        mix = get_microkernel(ComparisonOp.XOR).mix
        assert (mix.alu, mix.popc) == (2, 1)

    def test_andnot_mix_depends_on_fusion(self):
        mix = get_microkernel(ComparisonOp.ANDNOT).mix
        assert mix.alu_ops(has_fused_andnot=True) == 2   # ANDN + ADD
        assert mix.alu_ops(has_fused_andnot=False) == 3  # NOT + AND + ADD
        assert mix.popc == 1

    def test_prenegated_mix_matches_and(self):
        assert (
            get_microkernel(ComparisonOp.AND_PRENEGATED).mix
            == get_microkernel(ComparisonOp.AND).mix
        )


class TestRegistry:
    def test_all_ops_registered(self):
        for op in ComparisonOp:
            assert op in MICROKERNELS

    def test_lookup_by_string(self):
        assert get_microkernel("xor").op is ComparisonOp.XOR

    def test_unknown_string_rejected(self):
        with pytest.raises(ModelError, match="unknown op"):
            get_microkernel("nand")

    def test_symmetry_flags(self):
        assert ComparisonOp.AND.is_symmetric
        assert ComparisonOp.XOR.is_symmetric
        assert not ComparisonOp.ANDNOT.is_symmetric

    def test_descriptions_present(self):
        for kernel in MICROKERNELS.values():
            assert kernel.description
