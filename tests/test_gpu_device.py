"""Tests for repro.gpu.device: the OpenCL-style stack."""

import numpy as np
import pytest

from repro.blis.microkernel import ComparisonOp
from repro.errors import AllocationError, DeviceError, KernelLaunchError
from repro.gpu.arch import GTX_980, TITAN_V
from repro.gpu.device import Device, Platform
from repro.gpu.kernel import KernelArgs, SnpKernel
from repro.snp.stats import ld_counts_naive
from repro.util.bitops import pack_bits


@pytest.fixture
def stack():
    device = Device(GTX_980)
    context = device.create_context()
    return device, context, context.create_queue()


def ld_kernel(arch=GTX_980, **kw):
    defaults = dict(m_c=32, m_r=4, k_c=383, n_r=384, grid_rows=4, grid_cols=4)
    defaults.update(kw)
    return SnpKernel.compile(arch, ComparisonOp.AND, **defaults)


class TestPlatform:
    def test_enumerates_devices(self):
        platforms = Platform.get_platforms()
        assert len(platforms) == 1
        names = [d.name for d in platforms[0].get_devices()]
        assert names == ["GTX 980", "Titan V", "Vega 64"]

    def test_device_repr(self):
        assert "GTX 980" in repr(Device(GTX_980))


class TestBuffers:
    def test_read_before_write_rejected(self, stack):
        _, context, queue = stack
        buf = context.create_buffer(64)
        with pytest.raises(DeviceError, match="before any write"):
            queue.enqueue_read_buffer(buf)

    def test_use_after_release_rejected(self, stack):
        _, context, queue = stack
        buf = context.create_buffer(64)
        buf.release()
        with pytest.raises(DeviceError, match="after release"):
            queue.enqueue_write_buffer(buf, np.zeros(4, dtype=np.uint32))

    def test_double_release_rejected(self, stack):
        _, context, _ = stack
        buf = context.create_buffer(64)
        buf.release()
        with pytest.raises(DeviceError):
            buf.release()

    def test_oversized_write_rejected(self, stack):
        _, context, queue = stack
        buf = context.create_buffer(8)
        with pytest.raises(DeviceError, match="byte buffer"):
            queue.enqueue_write_buffer(buf, np.zeros(100, dtype=np.uint32))

    def test_allocation_tracked(self, stack):
        _, context, _ = stack
        before = context.memory.allocated_bytes
        buf = context.create_buffer(4096)
        assert context.memory.allocated_bytes == before + 4096
        buf.release()
        assert context.memory.allocated_bytes == before

    def test_over_allocation_rejected(self, stack):
        _, context, _ = stack
        with pytest.raises(AllocationError):
            context.create_buffer(GTX_980.max_alloc_bytes + 1)


class TestQueueScheduling:
    def test_init_overhead_delays_first_command(self, stack):
        _, context, queue = stack
        buf = context.create_buffer(64)
        ev = queue.enqueue_write_buffer(buf, np.zeros(4, dtype=np.uint32))
        assert ev.started_at >= context.ready_at
        assert context.ready_at == GTX_980.memory.init_overhead_s

    def test_same_engine_serializes(self, stack):
        _, context, queue = stack
        buf1 = context.create_buffer(4096)
        buf2 = context.create_buffer(4096)
        data = np.zeros(1024, dtype=np.uint32)
        e1 = queue.enqueue_write_buffer(buf1, data)
        e2 = queue.enqueue_write_buffer(buf2, data)
        assert e2.started_at >= e1.ended_at

    def test_wait_for_respected(self, stack):
        _, context, queue = stack
        buf = context.create_buffer(1 << 20)
        data = np.zeros(1 << 18, dtype=np.uint32)
        write = queue.enqueue_write_buffer(buf, data)
        _, read = queue.enqueue_read_buffer(buf, wait_for=[write])
        assert read.started_at >= write.ended_at

    def test_independent_engines_overlap(self, stack):
        _, context, queue = stack
        big = np.zeros(1 << 22, dtype=np.uint32)  # 16 MiB ~ 1.4 ms
        buf_a = context.create_buffer(big.nbytes)
        buf_b = context.create_buffer(big.nbytes)
        w1 = queue.enqueue_write_buffer(buf_a, big)
        # Read of A depends only on its write; a second H2D write can
        # overlap the D2H read.
        _, r1 = queue.enqueue_read_buffer(buf_a, wait_for=[w1])
        w2 = queue.enqueue_write_buffer(buf_b, big, wait_for=[w1])
        assert w2.started_at < r1.ended_at

    def test_finish_is_makespan(self, stack):
        _, context, queue = stack
        buf = context.create_buffer(4096)
        queue.enqueue_write_buffer(buf, np.zeros(1024, dtype=np.uint32))
        events_end = max(e.ended_at for e in queue.events)
        assert queue.finish() == pytest.approx(events_end)

    def test_busy_summary_keys(self, stack):
        _, _, queue = stack
        assert set(queue.busy_summary()) == {"compute", "h2d", "d2h"}


class TestKernelEnqueue:
    def test_end_to_end_correctness(self, stack):
        _, context, queue = stack
        rng = np.random.default_rng(0)
        bits = (rng.random((20, 150)) < 0.5).astype(np.uint8)
        packed = pack_bits(bits, 32)
        a = context.create_buffer(packed.nbytes)
        b = context.create_buffer(packed.nbytes)
        c = context.create_buffer(20 * 20 * 4)
        ea = queue.enqueue_write_buffer(a, packed)
        eb = queue.enqueue_write_buffer(b, packed)
        ek, profile = queue.enqueue_kernel(ld_kernel(), a, b, c, wait_for=[ea, eb])
        out, er = queue.enqueue_read_buffer(c, wait_for=[ek])
        assert (out == ld_counts_naive(bits)).all()
        assert out.dtype == np.int32  # device accumulators are 32-bit
        assert ek.started_at >= max(ea.ended_at, eb.ended_at)
        assert er.started_at >= ek.ended_at
        assert profile.seconds > 0

    def test_kernel_from_other_device_rejected(self, stack):
        _, context, queue = stack
        wrong = SnpKernel.compile(
            TITAN_V, ComparisonOp.AND, m_c=32, m_r=4, k_c=383, n_r=1024,
            grid_rows=80, grid_cols=1,
        )
        a = context.create_buffer(64)
        with pytest.raises(KernelLaunchError, match="compiled for"):
            queue.enqueue_kernel(wrong, a, a, a)

    def test_accumulate_adds(self, stack):
        _, context, queue = stack
        bits = np.eye(8, 64, dtype=np.uint8)
        packed = pack_bits(bits, 32)
        a = context.create_buffer(packed.nbytes)
        b = context.create_buffer(packed.nbytes)
        c = context.create_buffer(8 * 8 * 4)
        queue.enqueue_write_buffer(a, packed)
        queue.enqueue_write_buffer(b, packed)
        queue.enqueue_kernel(ld_kernel(), a, b, c)
        queue.enqueue_kernel(ld_kernel(), a, b, c, accumulate=True)
        out, _ = queue.enqueue_read_buffer(c)
        assert (out == 2 * ld_counts_naive(bits)).all()


class TestDryRun:
    def test_dry_write_matches_wet_duration(self, stack):
        _, context, queue = stack
        data = np.zeros(1 << 16, dtype=np.uint32)
        buf = context.create_buffer(data.nbytes)
        wet = queue.enqueue_write_buffer(buf, data)
        dry = queue.enqueue_write_dry(data.nbytes)
        assert dry.duration == pytest.approx(wet.duration)

    def test_dry_kernel_matches_wet(self, stack):
        _, context, queue = stack
        rng = np.random.default_rng(1)
        bits = (rng.random((16, 96)) < 0.5).astype(np.uint8)
        packed = pack_bits(bits, 32)
        a = context.create_buffer(packed.nbytes)
        b = context.create_buffer(packed.nbytes)
        c = context.create_buffer(16 * 16 * 4)
        queue.enqueue_write_buffer(a, packed)
        queue.enqueue_write_buffer(b, packed)
        _, wet = queue.enqueue_kernel(ld_kernel(), a, b, c)
        _, dry = queue.enqueue_kernel_dry(
            ld_kernel(), KernelArgs(m=16, n=16, k=3)
        )
        assert dry.seconds == wet.seconds
