"""Tests for repro.gpu.kernel: configuration validation at compile."""

import pytest

from repro.blis.microkernel import ComparisonOp
from repro.errors import ConfigurationError, KernelLaunchError
from repro.gpu.arch import GTX_980, TITAN_V, VEGA_64
from repro.gpu.kernel import KernelArgs, SnpKernel


def compile_kernel(arch=GTX_980, **overrides):
    kw = dict(
        op=ComparisonOp.AND, m_c=32, m_r=4, k_c=383, n_r=384,
        grid_rows=4, grid_cols=4,
    )
    kw.update(overrides)
    return SnpKernel.compile(arch, **kw)


class TestCompileValidation:
    def test_published_configs_compile(self):
        compile_kernel(GTX_980, k_c=383, n_r=384)
        compile_kernel(TITAN_V, k_c=383, n_r=1024, grid_rows=80, grid_cols=1)
        compile_kernel(VEGA_64, k_c=512, n_r=1024, grid_rows=32, grid_cols=2)

    def test_m_r_must_match_vector_width(self):
        # Eq. 4: m_r multiple of N_vec.
        with pytest.raises(ConfigurationError, match="N_vec"):
            compile_kernel(m_r=3, m_c=33)

    def test_m_c_must_be_m_r_multiple(self):
        with pytest.raises(ConfigurationError, match="multiple of m_r"):
            compile_kernel(m_c=30, m_r=4)

    def test_shared_memory_overflow_rejected(self):
        # 32 * 384 * 4 = 49152 exceeds the 49136 usable bytes on NVIDIA
        # after the OpenCL reservation (Section V-E).
        with pytest.raises(ConfigurationError, match="shared memory"):
            compile_kernel(GTX_980, k_c=384)

    def test_full_shared_ok_on_vega(self):
        # Vega has no reservation: k_c = 512 fills shared exactly.
        compile_kernel(VEGA_64, k_c=512, n_r=1024, grid_rows=8, grid_cols=8)

    def test_n_r_must_divide_by_l_fn(self):
        with pytest.raises(ConfigurationError, match="L_fn"):
            compile_kernel(GTX_980, n_r=100)  # 100 % 6 != 0

    def test_grid_exceeding_cores_rejected(self):
        with pytest.raises(ConfigurationError, match="compute cores"):
            compile_kernel(GTX_980, grid_rows=4, grid_cols=5)

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            compile_kernel(k_c=0)

    def test_string_op_accepted(self):
        kernel = compile_kernel(op="xor")
        assert kernel.op is ComparisonOp.XOR


class TestKernelProperties:
    def test_n_cores(self):
        assert compile_kernel().n_cores == 16

    def test_threads_per_core(self):
        assert compile_kernel().threads_per_core == 4 * 6 * 32

    def test_blocking_plan_mirrors_config(self):
        kernel = compile_kernel()
        plan = kernel.blocking_plan(100, 200, 13)
        assert (plan.m, plan.n, plan.k) == (100, 200, 13)
        assert (plan.m_c, plan.k_c, plan.m_r, plan.n_r) == (32, 383, 4, 384)
        assert (plan.grid_rows, plan.grid_cols) == (4, 4)


class TestKernelArgs:
    def test_valid(self):
        args = KernelArgs(m=1, n=2, k=3)
        assert (args.m, args.n, args.k) == (1, 2, 3)

    def test_nonpositive_rejected(self):
        with pytest.raises(KernelLaunchError):
            KernelArgs(m=0, n=2, k=3)
