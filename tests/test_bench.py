"""Tests for repro.bench: series builders, table reports, CLI runner."""

import pytest

from repro.bench.figures import (
    FIG5_LIMITS,
    fig5_series,
    fig6_series,
    fig7_series,
    fig8_series,
    fig9_series,
)
from repro.bench.report import render_all_reports, render_figure_report
from repro.bench.runner import main
from repro.bench.tables import table1_report, table2_report
from repro.gpu.arch import ALL_GPUS, GTX_980, TITAN_V, VEGA_64


class TestFig5:
    @pytest.mark.parametrize("arch", ALL_GPUS, ids=lambda a: a.name)
    def test_efficiency_rises_to_paper_value(self, arch):
        series = fig5_series(arch)
        effs = [p["efficiency"] for p in series]
        # The curve rises toward the asymptote (Fig. 5's shape) ...
        assert effs[0] < effs[-1]
        assert all(b >= a * 0.999 for a, b in zip(effs, effs[1:]))
        # ... and the final point matches the paper's reported number.
        expected = {"GTX 980": 0.907, "Titan V": 0.971, "Vega 64": 0.549}[arch.name]
        assert effs[-1] == pytest.approx(expected, abs=0.01)

    def test_throughput_below_peak(self):
        for p in fig5_series(GTX_980):
            assert p["gpops"] <= p["peak_gpops"]

    def test_axis_limits_match_caption(self):
        assert FIG5_LIMITS["GTX 980"] == (15_360, 12_256)
        assert FIG5_LIMITS["Vega 64"] == (40_960, 16_384)
        series = fig5_series(VEGA_64)
        assert series[-1]["snp_strings"] == 16_384


class TestFig6:
    def test_crossover_exists(self):
        series = fig6_series()
        small = series[0]
        large = series[-1]
        # Small problems: CPU wins (init dominates the GPU).
        assert small["cpu_s"] < small["titan_v_s"]
        # Large problems: every GPU beats the CPU end-to-end.
        for arch in ALL_GPUS:
            key = arch.name.lower().replace(" ", "_")
            assert large[f"{key}_speedup"] > 1.0

    def test_speedup_within_abstract_band(self):
        # Abstract: end-to-end between 47 % and 677 % faster.
        series = fig6_series([12_000])
        for arch in ALL_GPUS:
            key = arch.name.lower().replace(" ", "_")
            speedup = series[0][f"{key}_speedup"]
            assert 1.47 <= speedup <= 7.77

    def test_custom_sizes(self):
        series = fig6_series([500, 1000])
        assert [p["sequences"] for p in series] == [500, 1000]


class TestFig7:
    def test_series_shape(self):
        series = fig7_series(VEGA_64)
        assert series[0]["cores"] == 1
        assert series[-1]["cores"] == 64
        assert series[0]["relative_per_core"] == pytest.approx(1.0)

    def test_vega_drop_and_titan_rise(self):
        vega = {p["cores"]: p["relative_per_core"] for p in fig7_series(VEGA_64)}
        titan = {p["cores"]: p["relative_per_core"] for p in fig7_series(TITAN_V)}
        assert vega[64] < 0.6
        assert titan[80] > 1.0


class TestFig8:
    def test_series_structure(self):
        series = fig8_series([128, 1024], db_rows=20 * 1024 * 1024)
        assert [p["snps"] for p in series] == [128, 1024]
        for p in series:
            for arch in ALL_GPUS:
                key = arch.name.lower().replace(" ", "_")
                assert p[f"{key}_s"] > 0

    def test_time_grows_with_snp_count(self):
        series = fig8_series([128, 1024])
        for arch in ALL_GPUS:
            key = arch.name.lower().replace(" ", "_")
            assert series[-1][f"{key}_s"] > series[0][f"{key}_s"]

    def test_gtx980_tiles_more_than_titan(self):
        point = fig8_series([1024])[0]
        assert point["gtx_980_tiles"] > point["titan_v_tiles"]


class TestFig9:
    def test_nvidia_flat_vega_penalized(self):
        rows = {p["device"]: p for p in fig9_series()}
        assert rows["GTX 980"]["andnot_penalty"] == pytest.approx(0.0, abs=0.01)
        assert rows["Titan V"]["andnot_penalty"] == pytest.approx(0.0, abs=0.01)
        # Vega: the NOT adds a third op to the 2-op ALU bottleneck.
        assert rows["Vega 64"]["andnot_penalty"] == pytest.approx(1 / 3, abs=0.02)


class TestTables:
    def test_table1_devices(self):
        report = table1_report(include_microbench=False)
        assert "2x Intel Xeon E5-2620 v2" in report
        assert report["GTX 980"]["Compute Cores (N_c)"] == 16

    def test_table1_microbench_recovery(self):
        report = table1_report(include_microbench=True)
        for arch in ALL_GPUS:
            row = report[arch.name]
            assert row["POPC units (measured, per cluster)"] == pytest.approx(
                arch.popc_units, rel=0.05
            )
            assert row["POPC/ALU pipes shared (measured)"] is False

    def test_table2_matches_paper(self):
        report = table2_report()
        assert report["Linkage disequilibrium / GTX 980"]["n_r"] == 384
        assert report["Linkage disequilibrium / Titan V"]["Core configuration"] == "80 x 1"
        assert report["FastID / Vega 64"]["k_c"] == 512


class TestReportRendering:
    def test_each_artifact_renders(self):
        for name in ("table2", "fig5", "fig6", "fig7", "fig8", "fig9"):
            text = render_figure_report(name)
            assert len(text) > 100

    def test_extension_artifacts_render(self):
        sparse = render_figure_report("ext-sparse")
        assert "crossover density" in sparse
        assert "sparse" in sparse and "dense" in sparse
        multi = render_figure_report("ext-multigpu")
        assert "DGX-2-like" in multi
        assert "speedup" in multi

    def test_unknown_artifact_rejected(self):
        with pytest.raises(KeyError):
            render_figure_report("fig99")

    def test_render_all(self):
        text = render_all_reports()
        for marker in ("Table I", "Table II", "Fig. 5", "Fig. 9"):
            assert marker in text


class TestRunnerCli:
    def test_specific_artifact(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_unknown_artifact_errors(self, capsys):
        assert main(["nonsense"]) == 2

    def test_multiple_artifacts(self, capsys):
        assert main(["fig9", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 9" in out and "Table II" in out
