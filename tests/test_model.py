"""Tests for repro.model: peaks, end-to-end estimation, scaling."""

import numpy as np
import pytest

from repro.core.config import Algorithm
from repro.core.framework import SNPComparisonFramework
from repro.errors import AllocationError, ModelError
from repro.gpu.arch import ALL_GPUS, GTX_980, TITAN_V, VEGA_64
from repro.model.endtoend import estimate_cpu_seconds, estimate_end_to_end
from repro.model.peak import (
    cpu_peak_word32_ops,
    device_peak_summary,
    gpops,
)
from repro.model.scaling import relative_per_core_performance, scaling_curve


class TestPeaks:
    def test_summary_contains_all_devices_and_cpu(self):
        rows = device_peak_summary()
        devices = [r["device"] for r in rows]
        assert devices == ["GTX 980", "Titan V", "Vega 64", "2x Intel Xeon E5-2620 v2"]

    def test_paper_peak_ordering(self):
        # Vega has the highest theoretical peak; CPU the lowest.
        peaks = {r["device"]: r["peak_gpops"] for r in device_peak_summary()}
        assert peaks["Vega 64"] > peaks["Titan V"] > peaks["GTX 980"]
        assert peaks["2x Intel Xeon E5-2620 v2"] == pytest.approx(50.4, abs=0.1)

    def test_bottleneck_labels(self):
        rows = {r["device"]: r["bottleneck_pipe"] for r in device_peak_summary()}
        assert rows["GTX 980"] == "popc"
        assert rows["Vega 64"] == "alu"

    def test_gpops_helper(self):
        assert gpops(1.5e9) == pytest.approx(1.5)

    def test_cpu_peak(self):
        assert cpu_peak_word32_ops() == pytest.approx(50.4e9)


class TestEndToEnd:
    def test_dry_matches_framework_run(self):
        """The estimator and the functional framework must agree exactly."""
        rng = np.random.default_rng(0)
        m, n, k_bits = 24, 40, 256
        a = (rng.random((m, k_bits)) < 0.5).astype(np.uint8)
        b = (rng.random((n, k_bits)) < 0.5).astype(np.uint8)
        for arch in ALL_GPUS:
            fw = SNPComparisonFramework(arch, Algorithm.FASTID_IDENTITY)
            _, report = fw.run(a, b)
            est = estimate_end_to_end(arch, Algorithm.FASTID_IDENTITY, m, n, k_bits)
            assert est.end_to_end_s == pytest.approx(report.end_to_end_s, rel=1e-9)
            assert est.kernel_s == pytest.approx(report.kernel_s, rel=1e-9)
            assert est.h2d_s == pytest.approx(report.h2d_s, rel=1e-9)
            assert est.d2h_s == pytest.approx(report.d2h_s, rel=1e-9)
            assert est.n_tiles == report.n_tiles

    def test_paper_scale_fastid(self):
        # 32 queries vs >20M profiles: priced, not materialized.
        est = estimate_end_to_end(
            TITAN_V, Algorithm.FASTID_IDENTITY, 32, 20 * 1024 * 1024, 1024
        )
        assert 0.1 < est.end_to_end_s < 5.0
        assert est.kernel_word_ops == pytest.approx(32 * 20 * 1024 * 1024 * 32, rel=0.01)

    def test_gtx980_needs_tiling_at_ndis_scale(self):
        # Section VI-E2: the GTX 980 cannot hold the full database.
        est = estimate_end_to_end(
            GTX_980, Algorithm.FASTID_IDENTITY, 32, 20 * 1024 * 1024, 1024
        )
        assert est.n_tiles > 1
        titan = estimate_end_to_end(
            TITAN_V, Algorithm.FASTID_IDENTITY, 32, 20 * 1024 * 1024, 1024
        )
        assert titan.n_tiles == 1

    def test_init_excluded_when_requested(self):
        with_init = estimate_end_to_end(GTX_980, Algorithm.LD, 512, 512, 1024)
        without = estimate_end_to_end(
            GTX_980, Algorithm.LD, 512, 512, 1024, include_init=False
        )
        assert without.init_s == 0.0
        assert with_init.end_to_end_s - without.end_to_end_s == pytest.approx(
            GTX_980.memory.init_overhead_s, rel=0.05
        )

    def test_double_buffering_helps_multi_tile(self):
        kwargs = dict(m=32, n=20 * 1024 * 1024, k_bits=1024)
        on = estimate_end_to_end(GTX_980, Algorithm.FASTID_IDENTITY, **kwargs)
        off = estimate_end_to_end(
            GTX_980, Algorithm.FASTID_IDENTITY, double_buffering=False, **kwargs
        )
        assert on.n_tiles > 1
        assert on.end_to_end_s < off.end_to_end_s
        assert on.overlap_s > 0

    def test_invalid_extents_rejected(self):
        with pytest.raises(ModelError):
            estimate_end_to_end(GTX_980, Algorithm.LD, 0, 10, 10)

    def test_oversized_query_operand_rejected(self):
        with pytest.raises(AllocationError):
            estimate_end_to_end(
                GTX_980, Algorithm.FASTID_IDENTITY, 2_000_000, 10, 20_000
            )

    def test_cpu_estimate(self):
        t = estimate_cpu_seconds(1000, 1000, 6400)
        assert t == pytest.approx(1000 * 1000 * 100 / (0.85 * 25.2e9))

    def test_throughput_property(self):
        est = estimate_end_to_end(TITAN_V, Algorithm.LD, 4096, 4096, 10_000)
        assert est.kernel_throughput_word_ops > 0


class TestScaling:
    def test_baseline_is_one(self):
        for arch in ALL_GPUS:
            assert relative_per_core_performance(arch, 1) == pytest.approx(1.0)

    def test_vega_drops_past_knee(self):
        assert relative_per_core_performance(VEGA_64, 8) == pytest.approx(1.0)
        assert relative_per_core_performance(VEGA_64, 16) < 0.95
        assert relative_per_core_performance(VEGA_64, 64) == pytest.approx(0.553, abs=0.02)

    def test_gtx980_about_90_percent_at_full(self):
        assert relative_per_core_performance(GTX_980, 16) == pytest.approx(0.926, abs=0.02)

    def test_titan_exceeds_100_percent(self):
        # Fig. 7: the Titan V rises above 100 % (DVFS baseline effect)
        # and "scales almost perfectly".
        assert relative_per_core_performance(TITAN_V, 4) > 1.0
        assert relative_per_core_performance(TITAN_V, 80) > 1.0

    def test_curve_default_sampling(self):
        curve = scaling_curve(GTX_980)
        cores = [c for c, _ in curve]
        assert cores == [1, 2, 4, 8, 16]

    def test_curve_custom_counts(self):
        curve = scaling_curve(VEGA_64, [1, 8, 64])
        assert len(curve) == 3

    def test_out_of_range_rejected(self):
        with pytest.raises(ModelError):
            relative_per_core_performance(GTX_980, 17)
