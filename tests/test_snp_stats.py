"""Tests for repro.snp.stats: the naive statistical oracles."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.snp.stats import (
    identity_distances_naive,
    ld_counts_naive,
    ld_d,
    ld_d_prime,
    ld_r_squared,
    mixture_scores_naive,
)


class TestLdCounts:
    def test_hand_computed(self):
        a = np.array([[1, 1, 0, 0], [0, 1, 1, 0]], dtype=np.uint8)
        counts = ld_counts_naive(a)
        assert counts.tolist() == [[2, 1], [1, 2]]

    def test_self_comparison_symmetric(self):
        rng = np.random.default_rng(0)
        a = (rng.random((10, 40)) < 0.4).astype(np.uint8)
        counts = ld_counts_naive(a)
        assert (counts == counts.T).all()
        assert (np.diag(counts) == a.sum(axis=1)).all()

    def test_two_operand_shape(self):
        a = np.zeros((3, 8), dtype=np.uint8)
        b = np.zeros((5, 8), dtype=np.uint8)
        assert ld_counts_naive(a, b).shape == (3, 5)

    def test_inner_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            ld_counts_naive(np.zeros((2, 4), dtype=np.uint8), np.zeros((2, 5), dtype=np.uint8))

    def test_non_binary_rejected(self):
        with pytest.raises(DatasetError):
            ld_counts_naive(np.array([[0, 2]]))


class TestLdD:
    def test_independent_sites_near_zero(self):
        rng = np.random.default_rng(1)
        a = (rng.random((2, 20000)) < 0.5).astype(np.uint8)
        d = ld_d(a)
        assert abs(d[0, 1]) < 0.02

    def test_perfectly_linked(self):
        row = np.tile([1, 0], 50)
        a = np.vstack([row, row])
        d = ld_d(a)
        # p_AB = 0.5, p_A = p_B = 0.5 -> D = 0.25.
        assert d[0, 1] == pytest.approx(0.25)

    def test_diagonal_is_variance(self):
        a = np.array([[1, 1, 0, 0, 0]])
        p = 0.4
        assert ld_d(a)[0, 0] == pytest.approx(p * (1 - p))

    def test_zero_observations_rejected(self):
        with pytest.raises(DatasetError):
            ld_d(np.zeros((2, 0), dtype=np.uint8))


class TestLdDPrime:
    def test_perfect_linkage_gives_one(self):
        row = np.tile([1, 0], 50)
        a = np.vstack([row, row])
        assert ld_d_prime(a)[0, 1] == pytest.approx(1.0)

    def test_monomorphic_gives_zero(self):
        a = np.vstack([np.ones(10, dtype=np.uint8), np.tile([1, 0], 5)])
        assert ld_d_prime(a)[0, 1] == 0.0

    def test_bounded_by_one(self):
        rng = np.random.default_rng(2)
        a = (rng.random((20, 100)) < 0.3).astype(np.uint8)
        dp = ld_d_prime(a)
        assert (np.abs(dp) <= 1.0 + 1e-12).all()


class TestLdRSquared:
    def test_perfect_linkage_gives_one(self):
        row = np.tile([1, 0], 50)
        a = np.vstack([row, row])
        assert ld_r_squared(a)[0, 1] == pytest.approx(1.0)

    def test_antilinked_gives_one(self):
        row = np.tile([1, 0], 50)
        a = np.vstack([row, 1 - row])
        assert ld_r_squared(a)[0, 1] == pytest.approx(1.0)

    def test_matches_numpy_corrcoef(self):
        rng = np.random.default_rng(3)
        a = (rng.random((5, 200)) < 0.4).astype(np.uint8)
        r2 = ld_r_squared(a)
        expected = np.corrcoef(a) ** 2
        assert np.allclose(r2, expected, atol=1e-10)

    def test_bounded(self):
        rng = np.random.default_rng(4)
        a = (rng.random((10, 50)) < 0.5).astype(np.uint8)
        r2 = ld_r_squared(a)
        assert (r2 >= -1e-12).all() and (r2 <= 1 + 1e-12).all()


class TestIdentityDistances:
    def test_hand_computed(self):
        q = np.array([[1, 0, 1, 0]], dtype=np.uint8)
        db = np.array([[1, 0, 1, 0], [0, 1, 0, 1], [1, 0, 0, 0]], dtype=np.uint8)
        assert identity_distances_naive(q, db)[0].tolist() == [0, 4, 1]

    def test_matches_direct_xor(self):
        rng = np.random.default_rng(5)
        q = (rng.random((4, 60)) < 0.5).astype(np.uint8)
        db = (rng.random((7, 60)) < 0.5).astype(np.uint8)
        direct = (q[:, None, :] ^ db[None, :, :]).sum(axis=2)
        assert (identity_distances_naive(q, db) == direct).all()

    def test_site_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            identity_distances_naive(
                np.zeros((1, 4), dtype=np.uint8), np.zeros((1, 5), dtype=np.uint8)
            )


class TestMixtureScores:
    def test_contained_reference_scores_zero(self):
        r = np.array([[1, 0, 1, 0]], dtype=np.uint8)
        m = np.array([[1, 1, 1, 0]], dtype=np.uint8)
        assert mixture_scores_naive(r, m)[0, 0] == 0

    def test_uncontained_counts_exclusive_alleles(self):
        r = np.array([[1, 1, 1, 0]], dtype=np.uint8)
        m = np.array([[1, 0, 0, 0]], dtype=np.uint8)
        assert mixture_scores_naive(r, m)[0, 0] == 2

    def test_matches_direct_formula(self):
        rng = np.random.default_rng(6)
        r = (rng.random((5, 80)) < 0.4).astype(np.uint8)
        m = (rng.random((3, 80)) < 0.6).astype(np.uint8)
        direct = (r[:, None, :] & (1 - m[None, :, :])).sum(axis=2)
        assert (mixture_scores_naive(r, m) == direct).all()

    def test_equals_xor_and_formulation(self):
        # The paper's simplification: (r ^ m) & r == r & ~m.
        rng = np.random.default_rng(7)
        r = (rng.random((4, 64)) < 0.5).astype(np.uint8)
        m = (rng.random((4, 64)) < 0.5).astype(np.uint8)
        via_xor = ((r[:, None, :] ^ m[None, :, :]) & r[:, None, :]).sum(axis=2)
        assert (mixture_scores_naive(r, m) == via_xor).all()
