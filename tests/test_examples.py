"""Every example script must run cleanly -- examples are part of CI.

Each test executes one ``examples/*.py`` in a subprocess and checks
exit status plus a content marker proving the scenario reached its
conclusion (not just imported successfully).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: script name -> substring its successful output must contain.
EXPECTED_MARKERS = {
    "quickstart.py": "performance report",
    "ld_population_scan.py": "bit-identical LD tables",
    "forensic_identity_search.py": "projection to NDIS scale",
    "mixture_analysis.py": "all devices agree bit-exactly",
    "device_tuning_report.py": "#define SNP_KC",
    "future_work_extensions.py": "density crossover",
    "pipeline_visualization.py": "trace events",
    "forensic_casework_pipeline.py": "kinship fallback",
}


def test_every_example_has_a_marker():
    """New examples must register an output marker here."""
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_MARKERS)


@pytest.mark.parametrize("script", sorted(EXPECTED_MARKERS))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED_MARKERS[script] in result.stdout
