"""Tests for repro.core.codegen: the emitted OpenCL C program."""

import re

import pytest

from repro.core.codegen import render_full_program, render_kernel_source
from repro.core.config import Algorithm
from repro.core.planner import derive_config
from repro.gpu.arch import ALL_GPUS, GTX_980, VEGA_64


@pytest.fixture(params=ALL_GPUS, ids=lambda a: a.name)
def program(request):
    arch = request.param
    config = derive_config(arch, Algorithm.LD)
    return arch, config, render_full_program(config, arch.l_fn)


class TestStructure:
    def test_balanced_braces_and_parens(self, program):
        _, _, text = program
        assert text.count("{") == text.count("}")
        assert text.count("(") == text.count(")")

    def test_single_kernel_entry(self, program):
        _, _, text = program
        assert text.count("__kernel void") == 1
        assert "snp_compare" in text

    def test_no_unresolved_includes(self, program):
        _, _, text = program
        assert "#include" not in text  # header inlined for single-file build

    def test_macros_defined_before_use(self, program):
        _, _, text = program
        for macro in ("SNP_MC", "SNP_KC", "SNP_NR", "SNP_MR",
                      "SNP_LFN_GROUPS", "SNP_THREADS_PER_COL"):
            define_pos = text.find(f"#define {macro}")
            assert define_pos >= 0, macro
            uses = [m.start() for m in re.finditer(rf"\b{macro}\b", text)]
            assert any(u > define_pos for u in uses), macro


class TestConfigurationAgreement:
    def test_header_values_match_config(self, program):
        arch, config, text = program
        assert f"#define SNP_KC            {config.k_c}" in text
        assert f"#define SNP_NR            {config.n_r}" in text
        assert f"#define SNP_LFN_GROUPS      {arch.l_fn}" in text
        assert (
            f"#define SNP_THREADS_PER_COL {config.m_c // config.m_r}" in text
        )

    def test_microkernel_macro_per_algorithm(self):
        ld = derive_config(GTX_980, Algorithm.LD)
        assert "SNP_OP_AND\n" in render_full_program(ld, GTX_980.l_fn)
        ident = derive_config(GTX_980, Algorithm.FASTID_IDENTITY)
        assert "SNP_OP_XOR" in render_full_program(ident, GTX_980.l_fn)
        mix_nv = derive_config(GTX_980, Algorithm.FASTID_MIXTURE)
        assert "SNP_OP_ANDNOT" in render_full_program(mix_nv, GTX_980.l_fn)
        mix_vega = derive_config(VEGA_64, Algorithm.FASTID_MIXTURE)
        assert "SNP_OP_AND_PRENEGATED" in render_full_program(mix_vega, VEGA_64.l_fn)

    def test_all_op_variants_defined(self, program):
        _, _, text = program
        for variant in ("SNP_OP_AND", "SNP_OP_XOR", "SNP_OP_ANDNOT",
                        "SNP_OP_AND_PRENEGATED"):
            assert f"#define {variant}(a, b)" in text

    def test_popcount_and_local_staging_present(self, program):
        _, _, text = program
        assert "popcount(" in text
        assert "__local uint a_tile[SNP_MC * SNP_KC]" in text
        assert "barrier(CLK_LOCAL_MEM_FENCE)" in text


class TestValidation:
    def test_indivisible_n_r_rejected(self):
        config = derive_config(GTX_980, Algorithm.LD)  # n_r = 384
        with pytest.raises(ValueError, match="not divisible"):
            render_full_program(config, l_fn_groups=5)

    def test_nonpositive_groups_rejected(self):
        config = derive_config(GTX_980, Algorithm.LD)
        with pytest.raises(ValueError):
            render_full_program(config, l_fn_groups=0)

    def test_kernel_source_alone_includes_header(self):
        config = derive_config(GTX_980, Algorithm.LD)
        source = render_kernel_source(config)
        assert '#include "snp_config.h"' in source
