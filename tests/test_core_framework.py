"""Tests for repro.core.framework: the end-to-end driver."""

import numpy as np
import pytest

from repro.blis.microkernel import ComparisonOp
from repro.core.config import Algorithm, KernelConfig
from repro.core.framework import SNPComparisonFramework
from repro.errors import ConfigurationError
from repro.gpu.arch import ALL_GPUS, GTX_980, TITAN_V, VEGA_64
from repro.snp.stats import (
    identity_distances_naive,
    ld_counts_naive,
    mixture_scores_naive,
)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    a = (rng.random((18, 250)) < 0.4).astype(np.uint8)
    b = (rng.random((33, 250)) < 0.5).astype(np.uint8)
    return a, b


class TestConstruction:
    def test_device_by_name(self):
        fw = SNPComparisonFramework("titan v")
        assert fw.arch is TITAN_V

    def test_device_by_arch(self):
        fw = SNPComparisonFramework(VEGA_64, Algorithm.FASTID_IDENTITY)
        assert fw.config.op is ComparisonOp.XOR

    def test_algorithm_by_string(self):
        fw = SNPComparisonFramework("GTX 980", "fastid_mixture")
        assert fw.algorithm is Algorithm.FASTID_MIXTURE

    def test_explicit_config_respected(self):
        cfg = KernelConfig(
            device="GTX 980", algorithm=Algorithm.LD, op=ComparisonOp.AND,
            m_r=4, n_r=96, k_c=100, m_c=32, grid_rows=2, grid_cols=2,
        )
        fw = SNPComparisonFramework("GTX 980", config=cfg)
        assert fw.kernel.n_r == 96

    def test_config_exceeding_cores_rejected(self):
        cfg = KernelConfig(
            device="GTX 980", algorithm=Algorithm.LD, op=ComparisonOp.AND,
            m_r=4, n_r=96, k_c=100, m_c=32, grid_rows=17, grid_cols=1,
        )
        with pytest.raises(ConfigurationError):
            SNPComparisonFramework("GTX 980", config=cfg)

    def test_repr(self):
        assert "Titan V" in repr(SNPComparisonFramework("Titan V"))


class TestRunCorrectness:
    @pytest.mark.parametrize("arch", ALL_GPUS, ids=lambda a: a.name)
    def test_ld_on_every_device(self, data, arch):
        a, _ = data
        fw = SNPComparisonFramework(arch, Algorithm.LD)
        counts, report = fw.run(a)
        assert (counts == ld_counts_naive(a)).all()
        assert report.device == arch.name

    @pytest.mark.parametrize("arch", ALL_GPUS, ids=lambda a: a.name)
    def test_identity_on_every_device(self, data, arch):
        a, b = data
        fw = SNPComparisonFramework(arch, Algorithm.FASTID_IDENTITY)
        dist, _ = fw.run(a, b)
        assert (dist == identity_distances_naive(a, b)).all()

    @pytest.mark.parametrize("arch", ALL_GPUS, ids=lambda a: a.name)
    def test_mixture_on_every_device(self, data, arch):
        a, b = data
        fw = SNPComparisonFramework(arch, Algorithm.FASTID_MIXTURE)
        scores, _ = fw.run(a, b)
        assert (scores == mixture_scores_naive(a, b)).all()

    def test_mixture_prenegation_variants_agree(self, data):
        a, b = data
        fused = SNPComparisonFramework(TITAN_V, Algorithm.FASTID_MIXTURE, prenegate=False)
        pre = SNPComparisonFramework(TITAN_V, Algorithm.FASTID_MIXTURE, prenegate=True)
        assert fused.config.op is ComparisonOp.ANDNOT
        assert pre.config.op is ComparisonOp.AND_PRENEGATED
        s1, _ = fused.run(a, b)
        s2, _ = pre.run(a, b)
        assert (s1 == s2).all()

    def test_ld_self_comparison_with_prenegation_guard(self, data):
        # run(a) with a pre-negated-database mixture framework must
        # negate only the right operand.
        a, _ = data
        fw = SNPComparisonFramework(VEGA_64, Algorithm.FASTID_MIXTURE)
        assert fw.database_needs_prenegation
        scores, _ = fw.run(a)
        assert (scores == mixture_scores_naive(a, a)).all()

    def test_site_count_mismatch_rejected(self, data):
        a, _ = data
        fw = SNPComparisonFramework(GTX_980)
        with pytest.raises(ConfigurationError):
            fw.run(a, np.zeros((4, 99), dtype=np.uint8))


class TestReports:
    def test_report_fields(self, data):
        a, b = data
        fw = SNPComparisonFramework(GTX_980, Algorithm.FASTID_IDENTITY)
        _, report = fw.run(a, b)
        assert report.m == 18 and report.n == 33 and report.k_bits == 250
        assert report.init_s == GTX_980.memory.init_overhead_s
        assert report.h2d_s > 0
        assert report.kernel_s > 0
        assert report.d2h_s > 0
        assert report.end_to_end_s >= report.init_s
        assert report.n_kernel_launches == report.n_tiles == 1
        assert report.word_ops > 0
        assert 0 < report.kernel_efficiency <= 1

    def test_report_summary_text(self, data):
        a, _ = data
        fw = SNPComparisonFramework(GTX_980)
        _, report = fw.run(a)
        text = str(report)
        assert "end-to-end" in text
        assert "GTX 980" in text

    def test_cpu_reference(self):
        fw = SNPComparisonFramework(GTX_980)
        t = fw.cpu_reference_seconds(1000, 1000, 10_000)
        # 1000*1000*157 word-ops at 85 % of 25.2 G/s.
        assert t == pytest.approx(1000 * 1000 * 157 / (0.85 * 25.2e9), rel=1e-6)

    def test_speedup_helper(self, data):
        a, _ = data
        fw = SNPComparisonFramework(GTX_980)
        _, report = fw.run(a)
        assert report.speedup_over(report.end_to_end_s * 2) == pytest.approx(2.0)
