"""Tests for symmetry-aware Gram mode: triangular shard plans, the
operand-deduplicated panel cache, serial triangular walks, and the
persisted host autotuner."""

import json

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blis.blocking import BlockingPlan
from repro.blis.gemm import (
    bit_gemm_blocked,
    bit_gemm_reference,
    same_operand,
)
from repro.blis.microkernel import ComparisonOp
from repro.core.framework import SNPComparisonFramework
from repro.core.config import Algorithm
from repro.core.ld import linkage_disequilibrium
from repro.errors import ConfigurationError, PackingError
from repro.observability.counters import GEMM_WORD_OPS, PANEL_DEDUP_HITS, SHARDS_MIRRORED
from repro.observability.tracer import Tracer, set_tracer
from repro.parallel import ShardPlan, get_engine
from repro.kernels import DEFAULT_BACKEND_NAME, registered_backends
from repro.parallel.tuner import (
    TUNING_FORMAT,
    TuningCache,
    TuningRecord,
    configure_tuning,
    lookup_tuned,
    tune_problem,
    tuning_key,
)


def _n_extra_tunable_backends() -> int:
    """Tunable, available backends the tuner races beyond the default."""
    return sum(
        1
        for be in registered_backends()
        if be.info.tunable
        and be.info.available
        and be.info.name != DEFAULT_BACKEND_NAME
    )

SYMMETRIC_OPS = [
    ComparisonOp.AND,
    ComparisonOp.XOR,
    ComparisonOp.AND_PRENEGATED,
]
STRATEGIES = ["gemm", "blocked"]


@pytest.fixture()
def tracer():
    t = Tracer()
    previous = set_tracer(t)
    yield t
    set_tracer(previous)


@pytest.fixture()
def tuning_sandbox(tmp_path):
    """Point the process-wide tuning cache at a fresh temp file."""
    cache = configure_tuning(tmp_path / "tuning.json")
    yield cache
    configure_tuning(tmp_path / "tuning-after.json")


def square_words(m: int, k: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**64, size=(m, k), dtype=np.uint64)


# -- triangular shard plans ------------------------------------------------------


class TestTriangularPlan:
    BLOCKING = BlockingPlan(m=96, n=96, k=7, m_c=8, k_c=4, m_r=4, n_r=8)

    def test_covers_output_exactly_once_with_mirrors(self):
        plan = ShardPlan.triangular(self.BLOCKING, workers=3)
        paint = np.zeros((96, 96), dtype=np.int64)
        for shard in plan.shards:
            m0, m1 = shard.m_range
            n0, n1 = shard.n_range
            paint[m0:m1, n0:n1] += 1
            if shard.mirror:
                mm0, mm1 = shard.mirror_m_range
                mn0, mn1 = shard.mirror_n_range
                paint[mm0:mm1, mn0:mn1] += 1
        assert (paint == 1).all()

    def test_mirror_slots_strictly_below_diagonal(self):
        plan = ShardPlan.triangular(self.BLOCKING, workers=3)
        for shard in plan.shards:
            if shard.mirror:
                # Mirror slot rows start at/after the computed slot's
                # column start, i.e. strictly below the band diagonal.
                assert shard.mirror_m_range[0] >= shard.n_range[0]
                assert shard.mirror_m_range[0] > shard.m_range[0]
            else:
                assert shard.m_range == shard.n_range

    def test_word_ops_partition_the_product(self):
        plan = ShardPlan.triangular(self.BLOCKING, workers=3)
        total = 96 * 96 * 7
        assert plan.total_word_ops() + plan.mirrored_word_ops() == total
        assert plan.total_word_ops() < total
        assert plan.n_mirrored > 0

    def test_requires_square_output(self):
        blocking = BlockingPlan(m=32, n=64, k=3, m_c=8, k_c=4, m_r=4, n_r=8)
        with pytest.raises(ConfigurationError):
            ShardPlan.triangular(blocking, workers=2)

    def test_from_blocking_dispatches_on_symmetric(self):
        plan = ShardPlan.from_blocking(self.BLOCKING, 2, symmetric=True)
        assert plan.symmetric
        assert plan.n_mirrored > 0
        full = ShardPlan.from_blocking(self.BLOCKING, 2, symmetric=False)
        assert not full.symmetric
        assert full.n_mirrored == 0


# -- bit-exactness ---------------------------------------------------------------


class TestGramExactness:
    @pytest.mark.parametrize("op", SYMMETRIC_OPS)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_parallel_triangular_matches_reference(self, op, strategy):
        a = square_words(70, 5, seed=3)
        engine = get_engine(2, strategy)
        c, report = engine.run(a, a, op, force_parallel=True)
        assert report.symmetric
        assert report.n_mirrored > 0
        assert (c == bit_gemm_reference(a, a, op)).all()
        assert (c == c.T).all()

    @pytest.mark.parametrize("op", SYMMETRIC_OPS)
    def test_serial_blocked_triangular_matches_reference(self, op):
        a = square_words(48, 3, seed=4)
        plan = BlockingPlan(m=48, n=48, k=3, m_c=8, k_c=2, m_r=4, n_r=8)
        c = bit_gemm_blocked(a, a, op, plan, symmetric=True)
        assert (c == bit_gemm_reference(a, a, op)).all()

    def test_serial_blocked_triangular_skips_ops(self, tracer):
        a = square_words(64, 2, seed=5)
        plan = BlockingPlan(m=64, n=64, k=2, m_c=8, k_c=2, m_r=4, n_r=8)
        bit_gemm_blocked(a, a, ComparisonOp.AND, plan, symmetric=True)
        gram_ops = tracer.counters.get(GEMM_WORD_OPS)
        assert 0 < gram_ops < 64 * 64 * 2

    @given(
        m=st.integers(8, 40),
        k=st.integers(1, 4),
        seed=st.integers(0, 2**16),
        op=st.sampled_from(SYMMETRIC_OPS),
        strategy=st.sampled_from(STRATEGIES),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_triangular_gram_matches_reference(
        self, m, k, seed, op, strategy
    ):
        a = square_words(m, k, seed=seed)
        engine = get_engine(2, strategy)
        c, report = engine.run(a, a, op, force_parallel=True, symmetric=True)
        assert report.symmetric
        assert (c == bit_gemm_reference(a, a, op)).all()


# -- asymmetric ops and validation -----------------------------------------------


class TestSymmetryValidation:
    def test_andnot_never_triangular(self):
        a = square_words(40, 3, seed=6)
        engine = get_engine(2, "gemm")
        c, report = engine.run(a, a, ComparisonOp.ANDNOT, force_parallel=True)
        assert not report.symmetric
        assert report.n_mirrored == 0
        assert (c == bit_gemm_reference(a, a, ComparisonOp.ANDNOT)).all()

    def test_explicit_symmetric_with_andnot_rejected(self):
        a = square_words(16, 2)
        engine = get_engine(2, "gemm")
        with pytest.raises(PackingError):
            engine.run(a, a, ComparisonOp.ANDNOT, symmetric=True)
        plan = BlockingPlan(m=16, n=16, k=2, m_c=8, k_c=2, m_r=4, n_r=8)
        with pytest.raises(PackingError):
            bit_gemm_blocked(a, a, ComparisonOp.ANDNOT, plan, symmetric=True)

    def test_equal_content_copy_accepted(self):
        a = square_words(24, 2, seed=7)
        b = a.copy()
        assert not same_operand(a, b)
        engine = get_engine(2, "gemm")
        c, report = engine.run(
            a, b, ComparisonOp.AND, force_parallel=True, symmetric=True
        )
        assert report.symmetric
        assert (c == bit_gemm_reference(a, a, ComparisonOp.AND)).all()

    def test_different_content_rejected(self):
        a = square_words(24, 2, seed=8)
        b = square_words(24, 2, seed=9)
        engine = get_engine(2, "gemm")
        with pytest.raises(PackingError):
            engine.run(a, b, ComparisonOp.AND, symmetric=True)
        plan = BlockingPlan(m=24, n=24, k=2, m_c=8, k_c=2, m_r=4, n_r=8)
        with pytest.raises(PackingError):
            bit_gemm_blocked(a, b, ComparisonOp.AND, plan, symmetric=True)

    def test_copy_not_auto_detected(self):
        # Auto-detection stays pointer-based: a copy computes the full
        # product unless the caller asserts symmetry explicitly.
        a = square_words(24, 2, seed=10)
        engine = get_engine(2, "gemm")
        _, report = engine.run(a, a.copy(), ComparisonOp.AND, force_parallel=True)
        assert not report.symmetric

    def test_same_operand_detects_views(self):
        a = square_words(8, 2)
        assert same_operand(a, a)
        assert same_operand(a, a[:])
        assert not same_operand(a, a[1:])
        assert not same_operand(a, a.copy())


# -- the op-count acceptance criterion -------------------------------------------


class TestGramOpSavings:
    def test_engine_gram_word_ops_at_most_055x(self, tracer):
        """LD-style self-comparison: Gram mode computes <= 0.55x the
        word-ops of the full path (exact counter accounting)."""
        a = square_words(1024, 16, seed=11)
        engine = get_engine(4, "gemm")

        _, full_report = engine.run(
            a, a, ComparisonOp.AND, force_parallel=True, symmetric=False
        )
        full_ops = tracer.counters.get(GEMM_WORD_OPS)
        assert full_ops == 1024 * 1024 * 16

        _, gram_report = engine.run(a, a, ComparisonOp.AND, force_parallel=True)
        gram_ops = tracer.counters.get(GEMM_WORD_OPS) - full_ops
        assert gram_report.symmetric
        # The counter is exactly the shard plan's computed-op total.
        assert gram_ops == gram_report.shard_plan.total_word_ops()
        assert gram_ops <= 0.55 * full_ops

    def test_mirrored_shards_counted(self, tracer):
        a = square_words(1024, 16, seed=11)
        engine = get_engine(4, "gemm")
        _, report = engine.run(a, a, ComparisonOp.AND, force_parallel=True)
        assert tracer.counters.get(SHARDS_MIRRORED) == report.n_mirrored
        assert report.n_mirrored > 0

    def test_panel_dedup_hits_on_self_comparison(self, tracer):
        a = square_words(256, 8, seed=12)
        engine = get_engine(2, "gemm")
        _, report = engine.run(a, a, ComparisonOp.AND, force_parallel=True)
        assert tracer.counters.get(PANEL_DEDUP_HITS) > 0
        if report.executor == "thread":
            assert report.cache_stats.dedup_hits > 0
        else:
            # Process workers keep their own panel caches; dedup hits
            # reach the parent only through the merged counters above.
            assert report.cache_stats is None


# -- device plan re-blocking -----------------------------------------------------


class TestGramReblocking:
    def test_column_spanning_plan_is_reblocked(self):
        # Device kernels favour n_r spanning all columns; the engine
        # must still band the triangular plan finely.
        a = square_words(512, 8, seed=13)
        plan = BlockingPlan(m=512, n=512, k=8, m_c=32, k_c=8, m_r=4, n_r=512)
        engine = get_engine(4, "gemm")
        c, report = engine.run(a, a, ComparisonOp.AND, plan=plan, force_parallel=True)
        assert report.symmetric
        assert report.n_mirrored > 0
        assert (c == bit_gemm_reference(a, a, ComparisonOp.AND)).all()

    def test_full_plans_keep_caller_blocking(self):
        a = square_words(128, 4, seed=14)
        b = square_words(128, 4, seed=15)
        plan = BlockingPlan(m=128, n=128, k=4, m_c=32, k_c=4, m_r=4, n_r=128)
        engine = get_engine(2, "gemm")
        _, report = engine.run(a, b, ComparisonOp.AND, plan=plan, force_parallel=True)
        assert report.shard_plan.blocking.n_r == 128


# -- framework / pipeline integration --------------------------------------------


class TestFrameworkGram:
    def test_ld_self_comparison_engages_gram(self):
        rng = np.random.default_rng(16)
        mat = rng.integers(0, 2, size=(512, 512), dtype=np.uint8)
        result = linkage_disequilibrium(
            mat, compare="sites", workers=4, strategy="gemm"
        )
        parallel = result.report.kernel_profiles[0].parallel
        assert parallel is not None
        assert parallel.symmetric
        assert parallel.n_mirrored > 0

    def test_gram_false_disables(self):
        rng = np.random.default_rng(16)
        mat = rng.integers(0, 2, size=(512, 512), dtype=np.uint8)
        on = linkage_disequilibrium(mat, compare="sites", workers=4, strategy="gemm")
        off = linkage_disequilibrium(
            mat, compare="sites", workers=4, gram=False, strategy="gemm"
        )
        off_parallel = off.report.kernel_profiles[0].parallel
        assert not off_parallel.symmetric
        assert off_parallel.n_mirrored == 0
        assert (on.counts == off.counts).all()

    def test_explicit_same_matrix_operands_fold_to_self_comparison(self):
        rng = np.random.default_rng(17)
        mat = rng.integers(0, 2, size=(512, 512), dtype=np.uint8)
        fw = SNPComparisonFramework(
            "Titan V", Algorithm.LD, workers=4, strategy="gemm"
        )
        table, report = fw.run(mat, mat)
        assert report.kernel_profiles[0].parallel.symmetric
        assert (table == table.T).all()

    def test_mixture_prenegated_never_gram(self):
        from repro.core.mixture import mixture_analysis

        rng = np.random.default_rng(18)
        refs = rng.integers(0, 2, size=(512, 512), dtype=np.uint8)
        result = mixture_analysis(
            refs, refs, device="Vega 64", workers=4, strategy="gemm"
        )
        parallel = result.report.kernel_profiles[0].parallel
        assert parallel is not None
        assert not parallel.symmetric


# -- the persisted host autotuner ------------------------------------------------


class TestTuningCache:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "tuning.json"
        cache = TuningCache(path)
        record = TuningRecord(
            strategy="gemm",
            triangular=True,
            crossover_ops=None,
            best_seconds=0.01,
            candidates=4,
        )
        key = tuning_key(ComparisonOp.AND, 100, 100, 8, 64, 4)
        cache.store(key, record)
        cache.save()

        reloaded = TuningCache(path)
        assert reloaded.lookup(key) == record
        assert reloaded.load_error is None
        assert len(reloaded) == 1

    def test_missing_file_is_empty(self, tmp_path):
        cache = TuningCache(tmp_path / "absent.json")
        assert cache.lookup("anything") is None
        assert cache.load_error is None

    def test_corrupt_json_degrades_gracefully(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text("{not json")
        cache = TuningCache(path)
        assert cache.lookup("anything") is None
        assert "corrupt" in cache.load_error

    def test_foreign_format_degrades_gracefully(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text(json.dumps({"format": "other/9", "records": {}}))
        cache = TuningCache(path)
        assert cache.lookup("anything") is None
        assert "format" in cache.load_error

    def test_bad_record_skipped_good_kept(self, tmp_path):
        path = tmp_path / "tuning.json"
        good = TuningRecord("blocked", False, None, 0.5, 2).to_json()
        path.write_text(
            json.dumps(
                {
                    "format": TUNING_FORMAT,
                    "records": {"bad": {"strategy": "warp"}, "good": good},
                }
            )
        )
        cache = TuningCache(path)
        assert cache.lookup("bad") is None
        assert cache.lookup("good") is not None
        assert "skipped" in cache.load_error

    def test_shape_bucketing_shares_size_class(self):
        k1 = tuning_key(ComparisonOp.AND, 100, 100, 8, 64, 4)
        k2 = tuning_key(ComparisonOp.AND, 128, 128, 8, 64, 4)
        k3 = tuning_key(ComparisonOp.AND, 129, 129, 8, 64, 4)
        assert k1 == k2
        assert k2 != k3

    def test_tune_problem_records_and_persists(self, tmp_path):
        cache = TuningCache(tmp_path / "tuning.json")
        record = tune_problem(
            48, 48, 2, op=ComparisonOp.AND, workers=2, cache=cache
        )
        assert record.strategy in STRATEGIES + ["panel"]
        # {gemm, blocked} x {full, triangular} plus {full, triangular}
        # for each extra tunable backend the tuner races.
        assert record.candidates == 4 + 2 * _n_extra_tunable_backends()
        reloaded = TuningCache(tmp_path / "tuning.json")
        key = tuning_key(ComparisonOp.AND, 48, 48, 2, 64, 2)
        assert reloaded.lookup(key) == record

    def test_tune_problem_asymmetric_has_no_triangular_candidates(self, tmp_path):
        cache = TuningCache(tmp_path / "tuning.json")
        record = tune_problem(
            32, 48, 2, op=ComparisonOp.ANDNOT, workers=2, cache=cache,
            persist=False,
        )
        assert record.candidates == 2 + _n_extra_tunable_backends()
        assert not record.triangular

    def test_tune_problem_rejects_bad_extents(self, tmp_path):
        cache = TuningCache(tmp_path / "tuning.json")
        with pytest.raises(ConfigurationError):
            tune_problem(0, 4, 2, cache=cache, persist=False)
        with pytest.raises(ConfigurationError):
            tune_problem(4, 4, 2, repeats=0, cache=cache, persist=False)


def _env_executor() -> str:
    """The executor an ``executor="auto"`` engine resolves under the
    current environment -- tuner records must be stored under that
    executor's key for the engine's lookup to hit (the CI process leg
    runs this suite with ``REPRO_EXECUTOR=process``)."""
    import os

    return os.environ.get("REPRO_EXECUTOR", "").strip() or "thread"


class TestEngineConsultsTuner:
    def test_auto_honours_tuned_strategy(self, tuning_sandbox):
        a = square_words(64, 2, seed=20)
        record = TuningRecord(
            strategy="blocked",
            triangular=False,
            crossover_ops=None,
            best_seconds=0.001,
            candidates=4,
        )
        tuning_sandbox.store(
            tuning_key(ComparisonOp.AND, 64, 64, 2, 64, 2, executor=_env_executor()),
            record,
        )
        engine = get_engine(2, "auto")
        c, report = engine.run(a, a, ComparisonOp.AND, force_parallel=True)
        assert report.strategy == "blocked"
        # The record measured full plans faster: the Gram hint is dropped.
        assert not report.symmetric
        assert (c == bit_gemm_reference(a, a, ComparisonOp.AND)).all()

    def test_auto_without_record_defaults_to_gemm(self, tuning_sandbox):
        a = square_words(64, 2, seed=21)
        engine = get_engine(2, "auto")
        _, report = engine.run(a, a, ComparisonOp.AND, force_parallel=True)
        assert report.strategy == "gemm"
        assert report.symmetric

    def test_auto_with_triangular_record_keeps_gram(self, tuning_sandbox):
        a = square_words(64, 2, seed=22)
        record = TuningRecord(
            strategy="gemm",
            triangular=True,
            crossover_ops=None,
            best_seconds=0.001,
            candidates=4,
        )
        tuning_sandbox.store(
            tuning_key(ComparisonOp.AND, 64, 64, 2, 64, 2, executor=_env_executor()),
            record,
        )
        engine = get_engine(2, "auto")
        _, report = engine.run(a, a, ComparisonOp.AND, force_parallel=True)
        assert report.strategy == "gemm"
        assert report.symmetric

    def test_lookup_tuned_reads_sandbox(self, tuning_sandbox):
        record = TuningRecord("gemm", True, 12345, 0.5, 4)
        tuning_sandbox.store(tuning_key(ComparisonOp.XOR, 8, 8, 1, 64, 3), record)
        assert lookup_tuned(ComparisonOp.XOR, 8, 8, 1, 64, 3) == record
        assert lookup_tuned(ComparisonOp.XOR, 8, 8, 1, 64, 5) is None
