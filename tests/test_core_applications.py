"""Tests for the application APIs: ld, identity, mixture."""

import numpy as np
import pytest

from repro.core.framework import SNPComparisonFramework
from repro.core.identity import identity_search
from repro.core.ld import linkage_disequilibrium
from repro.core.mixture import mixture_analysis
from repro.errors import DatasetError
from repro.snp.forensic import generate_database, generate_queries, make_mixture
from repro.snp.generator import PopulationModel, generate_population
from repro.snp.stats import (
    identity_distances_naive,
    ld_d_prime,
    ld_r_squared,
    mixture_scores_naive,
)


@pytest.fixture(scope="module")
def population():
    return generate_population(
        PopulationModel(80, 120, block_size=12, maf_alpha=2, maf_beta=3), rng=0
    )


@pytest.fixture(scope="module")
def forensic():
    db = generate_database(300, 192, rng=1)
    queries, members = generate_queries(db, 3, 5, rng=2)
    return db, queries, members


class TestLinkageDisequilibrium:
    def test_site_statistics_match_oracle(self, population):
        result = linkage_disequilibrium(population, device="GTX 980", compare="sites")
        site_major = population.matrix.T
        assert np.allclose(result.r_squared, ld_r_squared(site_major))
        assert np.allclose(result.d_prime, ld_d_prime(site_major))
        assert result.counts.shape == (120, 120)

    def test_sample_orientation(self, population):
        result = linkage_disequilibrium(
            population, device="Vega 64", compare="samples"
        )
        assert result.counts.shape == (80, 80)
        assert result.n_observations == 120

    def test_raw_matrix_accepted(self, population):
        result = linkage_disequilibrium(population.matrix, device="Titan V")
        assert result.counts.shape == (120, 120)

    def test_p_ab_normalization(self, population):
        result = linkage_disequilibrium(population, device="GTX 980")
        assert result.p_ab.max() <= 1.0
        diag = np.diag(result.p_ab)
        assert np.allclose(diag, result.frequencies)

    def test_d_antisymmetry_in_sign(self, population):
        result = linkage_disequilibrium(population, device="GTX 980")
        assert np.allclose(result.d, result.d.T)

    def test_reusing_framework(self, population):
        fw = SNPComparisonFramework("GTX 980", "ld")
        r1 = linkage_disequilibrium(population, framework=fw)
        r2 = linkage_disequilibrium(population, framework=fw)
        assert (r1.counts == r2.counts).all()

    def test_bad_compare_rejected(self, population):
        with pytest.raises(DatasetError):
            linkage_disequilibrium(population, compare="columns")

    def test_bad_matrix_rejected(self):
        with pytest.raises(DatasetError):
            linkage_disequilibrium(np.zeros(5))


class TestIdentitySearch:
    def test_distances_match_oracle(self, forensic):
        db, queries, _ = forensic
        result = identity_search(queries, db, device="Titan V")
        assert (result.distances == identity_distances_naive(queries, db.profiles)).all()

    def test_member_queries_found(self, forensic):
        db, queries, members = forensic
        result = identity_search(queries, db, device="GTX 980")
        hits = result.matches(0)
        found = {(q, p) for q, p, _ in hits}
        for qi in range(3):
            assert (qi, int(members[qi])) in found

    def test_unrelated_queries_not_matched(self, forensic):
        db, queries, members = forensic
        result = identity_search(queries, db, device="Vega 64")
        matched_queries = {q for q, _, _ in result.matches(0)}
        assert not matched_queries & set(range(3, 8))

    def test_best_match(self, forensic):
        db, queries, members = forensic
        result = identity_search(queries, db)
        profile, distance = result.best_match(0)
        assert profile == int(members[0])
        assert distance == 0

    def test_matches_sorted_by_distance(self, forensic):
        db, queries, _ = forensic
        result = identity_search(queries, db)
        hits = result.matches(max_distance=30)
        distances = [d for _, _, d in hits]
        assert distances == sorted(distances)

    def test_plain_matrix_database(self, forensic):
        db, queries, _ = forensic
        result = identity_search(queries, db.profiles, device="GTX 980")
        assert result.distances.shape == (8, 300)

    def test_dimension_mismatch_rejected(self, forensic):
        db, _, _ = forensic
        with pytest.raises(DatasetError):
            identity_search(np.zeros((2, 10), dtype=np.uint8), db)


class TestMixtureAnalysis:
    def test_scores_match_oracle(self, forensic):
        db, _, _ = forensic
        refs = db.profiles[:40]
        mixtures = np.vstack(
            [make_mixture(db.profiles[:3]), make_mixture(db.profiles[10:12])]
        )
        result = mixture_analysis(refs, mixtures, device="Vega 64")
        assert (result.scores == mixture_scores_naive(refs, mixtures)).all()

    def test_contributors_detected(self, forensic):
        db, _, _ = forensic
        refs = db.profiles[:40]
        mixture = make_mixture(db.profiles[:3])[None, :]
        result = mixture_analysis(refs, mixture, device="Titan V")
        contributors = {r for r, _ in result.consistent_contributors(0)}
        assert {0, 1, 2} <= contributors

    def test_noncontributors_score_positive(self, forensic):
        db, _, _ = forensic
        refs = db.profiles[:40]
        mixture = make_mixture(db.profiles[:3])[None, :]
        result = mixture_analysis(refs, mixture, device="GTX 980")
        non_contrib = [result.scores[r, 0] for r in range(3, 40)]
        assert np.mean([s > 0 for s in non_contrib]) > 0.9

    def test_prenegate_flag_reported(self, forensic):
        db, _, _ = forensic
        refs = db.profiles[:8]
        mixture = make_mixture(db.profiles[:2])[None, :]
        vega = mixture_analysis(refs, mixture, device="Vega 64")
        titan = mixture_analysis(refs, mixture, device="Titan V")
        assert vega.prenegated and not titan.prenegated
        assert (vega.scores == titan.scores).all()

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            mixture_analysis(
                np.zeros((2, 8), dtype=np.uint8), np.zeros((1, 9), dtype=np.uint8)
            )
