"""Tests for repro.core.packing: operand preparation and cropping."""

import numpy as np
import pytest

from repro.core.packing import crop_result, pack_operand
from repro.errors import PackingError
from repro.util.bitops import popcount, unpack_bits


class TestPackOperand:
    def test_basic_shape(self):
        bits = np.ones((5, 40), dtype=np.uint8)
        op = pack_operand(bits, word_bits=32, row_multiple=4)
        assert op.padded_rows == 8
        assert op.k_words == 2
        assert op.n_rows == 5
        assert op.n_bits == 40

    def test_padding_rows_zero(self):
        bits = np.ones((3, 32), dtype=np.uint8)
        op = pack_operand(bits, row_multiple=4)
        assert (op.words[3:] == 0).all()

    def test_data_preserved(self):
        rng = np.random.default_rng(0)
        bits = (rng.random((6, 70)) < 0.5).astype(np.uint8)
        op = pack_operand(bits, row_multiple=4)
        assert (unpack_bits(op.words[:6], 70) == bits).all()

    def test_negate_flips_data_not_padding(self):
        bits = np.zeros((2, 40), dtype=np.uint8)
        op = pack_operand(bits, row_multiple=4, negate=True)
        assert op.negated
        # Data rows: 40 bits set per row; padding bits within the last
        # word (bits 40..63) stay zero, and padding rows stay zero.
        counts = popcount(op.words).sum(axis=1)
        assert counts[0] == counts[1] == 40
        assert counts[2] == counts[3] == 0

    def test_negate_requires_binary(self):
        with pytest.raises(PackingError):
            pack_operand(np.array([[0, 2]]), negate=True)

    def test_uint64_packing(self):
        bits = np.ones((2, 100), dtype=np.uint8)
        op = pack_operand(bits, word_bits=64)
        assert op.words.dtype == np.uint64
        assert op.k_words == 2

    def test_nbytes(self):
        op = pack_operand(np.zeros((4, 64), dtype=np.uint8), word_bits=32)
        assert op.nbytes == 4 * 2 * 4

    def test_invalid_inputs(self):
        with pytest.raises(PackingError):
            pack_operand(np.zeros(5))
        with pytest.raises(PackingError):
            pack_operand(np.zeros((2, 2)), row_multiple=0)

    def test_zero_rows_padded_to_multiple(self):
        op = pack_operand(np.zeros((0, 32), dtype=np.uint8), row_multiple=4)
        assert op.n_rows == 0
        assert op.padded_rows == 4  # at least one micro-panel


class TestCropResult:
    def test_crops_padding(self):
        a = pack_operand(np.zeros((5, 32), dtype=np.uint8), row_multiple=4)
        b = pack_operand(np.zeros((6, 32), dtype=np.uint8), row_multiple=4)
        table = np.arange(8 * 8).reshape(8, 8)
        out = crop_result(table, a, b)
        assert out.shape == (5, 6)
        assert (out == table[:5, :6]).all()

    def test_too_small_table_rejected(self):
        a = pack_operand(np.zeros((5, 32), dtype=np.uint8))
        b = pack_operand(np.zeros((5, 32), dtype=np.uint8))
        with pytest.raises(PackingError):
            crop_result(np.zeros((2, 2)), a, b)

    def test_returns_copy(self):
        a = pack_operand(np.zeros((2, 32), dtype=np.uint8))
        b = pack_operand(np.zeros((2, 32), dtype=np.uint8))
        table = np.zeros((2, 2))
        out = crop_result(table, a, b)
        out[0, 0] = 99
        assert table[0, 0] == 0
