"""Tests for repro.cpu: architecture model, functional BLIS, timing."""

import numpy as np
import pytest

from repro.cpu.arch import CPUArchitecture, XEON_E5_2620_V2
from repro.cpu.blis_cpu import cpu_snp_comparison, default_cpu_blocking
from repro.cpu.timing import CPUTimingModel
from repro.blis.microkernel import ComparisonOp
from repro.errors import ConfigurationError, ModelError, PackingError
from repro.snp.stats import identity_distances_naive, ld_counts_naive
from repro.util.bitops import pack_bits


class TestCpuArch:
    def test_xeon_matches_table1(self):
        cpu = XEON_E5_2620_V2
        assert cpu.frequency_ghz == 2.1
        assert cpu.n_cores == 12       # 2 sockets x 6 cores
        assert cpu.word_bits == 64
        assert cpu.popcount_units == 1
        assert cpu.popcount_latency == 3
        assert cpu.add_units == 4

    def test_peak_is_popcount_bound(self):
        cpu = XEON_E5_2620_V2
        # 12 cores x 2.1 GHz x 1 popcount/cycle.
        assert cpu.peak_word_ops_per_second() == pytest.approx(12 * 2.1e9)

    def test_peak_32bit_normalization(self):
        cpu = XEON_E5_2620_V2
        assert cpu.peak_word32_ops_per_second() == pytest.approx(2 * 12 * 2.1e9)
        assert cpu.peak_word32_ops_per_second() / 1e9 == pytest.approx(50.4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CPUArchitecture("x", "y", frequency_ghz=0, n_cores=4)
        with pytest.raises(ConfigurationError):
            CPUArchitecture("x", "y", frequency_ghz=1, n_cores=4, word_bits=48)


class TestCpuBlis:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(0)
        bits_a = (rng.random((11, 200)) < 0.4).astype(np.uint8)
        bits_b = (rng.random((9, 200)) < 0.4).astype(np.uint8)
        return bits_a, bits_b, pack_bits(bits_a, 64), pack_bits(bits_b, 64)

    def test_blocked_path_matches_oracle(self, data):
        bits_a, bits_b, pa, pb = data
        out = cpu_snp_comparison(pa, pb, ComparisonOp.AND, use_blocked_path=True)
        assert (out == ld_counts_naive(bits_a, bits_b)).all()

    def test_fast_path_matches_oracle(self, data):
        bits_a, bits_b, pa, pb = data
        out = cpu_snp_comparison(pa, pb, ComparisonOp.XOR, use_blocked_path=False)
        assert (out == identity_distances_naive(bits_a, bits_b)).all()

    def test_paths_agree(self, data):
        _, _, pa, pb = data
        blocked = cpu_snp_comparison(pa, pb, ComparisonOp.ANDNOT, use_blocked_path=True)
        fast = cpu_snp_comparison(pa, pb, ComparisonOp.ANDNOT, use_blocked_path=False)
        assert (blocked == fast).all()

    def test_wrong_word_width_rejected(self, data):
        bits_a, _, _, _ = data
        pa32 = pack_bits(bits_a, 32)
        with pytest.raises(PackingError):
            cpu_snp_comparison(pa32, pa32)

    def test_default_blocking_derivation(self):
        plan = default_cpu_blocking(100, 100, 50)
        assert plan.m_r == 4 and plan.n_r == 8
        # k_c sized so (m_r + n_r) * k_c * 8 bytes fits half the 32 KiB L1.
        assert (plan.m_r + plan.n_r) * plan.k_c * 8 <= 16 * 1024
        # m_c aligned to m_r and L2-bounded.
        assert plan.m_c % plan.m_r == 0
        assert plan.m_c * plan.k_c * 8 <= 128 * 1024


class TestCpuTiming:
    def test_word_ops_counts_padded_words(self):
        model = CPUTimingModel()
        # 100 bits -> 2 64-bit words.
        assert model.word_ops(3, 5, 100) == 3 * 5 * 2

    def test_time_scales_linearly(self):
        model = CPUTimingModel()
        t1 = model.execution_time(100, 100, 6400)
        t2 = model.execution_time(200, 100, 6400)
        assert t2 == pytest.approx(2 * t1)

    def test_band_ordering(self):
        model = CPUTimingModel()
        fast, slow = model.execution_time_band(1000, 1000, 10000)
        nominal = model.execution_time(1000, 1000, 10000)
        assert fast < nominal < slow

    def test_efficiency_band_of_paper(self):
        # [11] reports 80-90 % of peak; the model throughput normalized
        # to 32-bit words must land inside that band of the 50.4 GPOPS
        # peak.
        model = CPUTimingModel()
        tp = model.throughput_word32_ops(4096, 4096, 65536)
        peak32 = XEON_E5_2620_V2.peak_word32_ops_per_second()
        assert 0.80 * peak32 <= tp <= 0.90 * peak32

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ModelError):
            CPUTimingModel(efficiency=0.0)
        with pytest.raises(ModelError):
            CPUTimingModel(efficiency=0.95, efficiency_low=0.8, efficiency_high=0.9)

    def test_negative_extent_rejected(self):
        with pytest.raises(ModelError):
            CPUTimingModel().word_ops(-1, 2, 3)
