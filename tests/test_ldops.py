"""Tests for repro.core.ldops -- streaming LD pruning and clumping.

Property-tests the central bit-exactness claims (chunked streaming ==
in-memory == brute-force dense reference, for every chunk size
including 1 and larger than the input), tie-breaking by site order,
the O(window) resident-state bound and its exact counters, input
validation, and the CLI subcommands.  Also carries the regression
tests for the satellite fixes in the LD/mixture stats layer.
"""

import warnings

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ld import LDResult, linkage_disequilibrium
from repro.core.ldops import (
    LDClumper,
    LDPruner,
    ld_clump,
    ld_prune,
    r2_exceeds,
)
from repro.core.mixture import mixture_analysis
from repro.core.profiles import RunReport
from repro.errors import DatasetError
from repro.io_stream import write_snpbin
from repro.observability.tracer import Tracer, set_tracer


@pytest.fixture
def tracer():
    """Install a fresh process tracer for one test."""
    t = Tracer()
    previous = set_tracer(t)
    yield t
    set_tracer(previous)


def _correlated_panel(n_sites, n_obs, seed=0, copy_every=3):
    """A binary site-major panel with deliberate near-duplicate rows."""
    rng = np.random.default_rng(seed)
    sites = rng.integers(0, 2, size=(n_sites, n_obs), dtype=np.uint8)
    for i in range(1, n_sites):
        if i % copy_every == 0:
            sites[i] = sites[i - 1]
            flips = rng.integers(0, n_obs, size=max(1, n_obs // 16))
            sites[i, flips] ^= 1
    return sites


def _dense_counts(sites):
    wide = sites.astype(np.int64)
    return wide @ wide.T, sites.sum(axis=1).astype(int), int(sites.shape[1])


def _dense_prune(sites, window, r2):
    """Brute-force greedy pruning over the full dense count matrix."""
    joint, counts, n_obs = _dense_counts(sites)
    kept, pruned, blocker = [], [], []
    for i in range(sites.shape[0]):
        hit = -1
        for j in kept:
            if i - j > window - 1:
                continue
            if r2_exceeds(
                int(joint[i, j]), counts[j], counts[i], n_obs, r2, strict=True
            ):
                hit = j
                break
        if hit >= 0:
            pruned.append(i)
            blocker.append(hit)
        else:
            kept.append(i)
    return kept, pruned, blocker


def _dense_clump(sites, scores, window, r2):
    """Brute-force rank-order greedy clumping (PLINK --clump style)."""
    joint, counts, n_obs = _dense_counts(sites)
    n = sites.shape[0]
    rank = lambda s: (-float(scores[s]), s)  # noqa: E731
    assignment = np.full(n, -1, dtype=np.int64)
    index_sites = []
    for s in sorted(range(n), key=rank):
        absorbers = [
            j
            for j in index_sites
            if abs(s - j) <= window - 1
            and r2_exceeds(
                int(joint[s, j]), counts[j], counts[s], n_obs, r2, strict=False
            )
        ]
        if absorbers:
            assignment[s] = min(absorbers, key=rank)
        else:
            assignment[s] = s
            index_sites.append(s)
    return assignment, index_sites


def _chunks(sites, chunk_rows):
    for start in range(0, sites.shape[0], chunk_rows):
        yield sites[start : start + chunk_rows]


# ---------------------------------------------------------------------------
# r2_exceeds
# ---------------------------------------------------------------------------


def test_r2_exceeds_matches_float_formula():
    rng = np.random.default_rng(7)
    for _ in range(200):
        n = int(rng.integers(1, 40))
        c_a = int(rng.integers(0, n + 1))
        c_b = int(rng.integers(0, n + 1))
        c_ab = int(rng.integers(0, min(c_a, c_b) + 1))
        den = c_a * (n - c_a) * c_b * (n - c_b)
        if den == 0:
            assert not r2_exceeds(c_ab, c_a, c_b, n, 0.0, strict=False)
            continue
        r2 = (n * c_ab - c_a * c_b) ** 2 / den
        for thr in (0.0, 0.2, 0.5, r2):
            assert r2_exceeds(c_ab, c_a, c_b, n, thr, strict=True) == (
                (n * c_ab - c_a * c_b) ** 2 > thr * den
            )
            assert r2_exceeds(c_ab, c_a, c_b, n, thr, strict=False) == (
                (n * c_ab - c_a * c_b) ** 2 >= thr * den
            )


def test_r2_exceeds_no_overflow_at_large_n():
    # (n * c_ab)^2 overflows int64 for n ~ 10^7; the exact-integer
    # predicate must not.
    n = 10_000_000
    c = n // 2
    assert r2_exceeds(c, c, c, n, 0.999, strict=True)
    assert not r2_exceeds(c // 2, c, c, n, 0.5, strict=True)


def test_r2_exceeds_monomorphic_is_false():
    assert not r2_exceeds(5, 5, 3, 5, 0.0, strict=False)  # c_a == n
    assert not r2_exceeds(0, 0, 3, 5, 0.0, strict=False)  # c_a == 0


# ---------------------------------------------------------------------------
# pruning: chunked == in-memory == dense reference
# ---------------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_sites=st.integers(1, 28),
    n_obs=st.integers(1, 40),
    window=st.integers(1, 12),
    r2=st.sampled_from([0.0, 0.1, 0.3, 0.5, 0.8, 1.0]),
    chunk_rows=st.integers(1, 32),
)
def test_prune_chunked_matches_dense_reference(
    seed, n_sites, n_obs, window, r2, chunk_rows
):
    sites = _correlated_panel(n_sites, n_obs, seed=seed)
    result = ld_prune(sites, window, r2, chunk_rows=chunk_rows, workers=1)
    kept, pruned, blocker = _dense_prune(sites, window, r2)
    assert result.kept.tolist() == kept
    assert result.pruned.tolist() == pruned
    assert result.blocker.tolist() == blocker
    assert result.n_sites == n_sites
    assert result.peak_window_sites <= window


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    chunk_rows=st.integers(1, 40),
)
def test_prune_chunking_invariant(seed, chunk_rows):
    sites = _correlated_panel(30, 24, seed=seed)
    whole = ld_prune(sites, window=8, r2=0.3, chunk_rows=64, workers=1)
    split = ld_prune(sites, window=8, r2=0.3, chunk_rows=chunk_rows, workers=1)
    assert np.array_equal(whole.kept, split.kept)
    assert np.array_equal(whole.pruned, split.pruned)
    assert np.array_equal(whole.blocker, split.blocker)
    # The scan statistics are chunk-invariant too, not just the output.
    assert whole.pairs_tested == split.pairs_tested
    assert whole.peak_window_sites == split.peak_window_sites


def test_prune_incremental_operator_matches_driver(tracer):
    sites = _correlated_panel(25, 32, seed=3)
    pruner = LDPruner(window=6, r2=0.25, workers=1)
    for chunk in _chunks(sites, 4):
        pruner.add_chunk(chunk)
    manual = pruner.finalize()
    driven = ld_prune(sites, window=6, r2=0.25, chunk_rows=4, workers=1)
    assert np.array_equal(manual.kept, driven.kept)
    assert driven.stream_stats is not None
    assert driven.stream_stats.chunks == -(-25 // 4)


# ---------------------------------------------------------------------------
# clumping: chunked == in-memory == dense reference
# ---------------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_sites=st.integers(1, 24),
    n_obs=st.integers(1, 32),
    window=st.integers(1, 10),
    r2=st.sampled_from([0.0, 0.2, 0.5, 0.9]),
    chunk_rows=st.integers(1, 28),
)
def test_clump_chunked_matches_dense_reference(
    seed, n_sites, n_obs, window, r2, chunk_rows
):
    rng = np.random.default_rng(seed + 1)
    sites = _correlated_panel(n_sites, n_obs, seed=seed)
    scores = rng.random(n_sites)
    result = ld_clump(
        sites, scores, window, r2, chunk_rows=chunk_rows, workers=1
    )
    assignment, index_sites = _dense_clump(sites, scores, window, r2)
    assert result.assignment.tolist() == assignment.tolist()
    assert result.index_sites.tolist() == index_sites
    for clump in result.clumps:
        assert all(
            assignment[m] == clump.index_site for m in clump.members
        )
    assert result.peak_window_sites <= window


@settings(max_examples=12, deadline=None)
@given(chunk_rows=st.integers(1, 30))
def test_clump_tie_break_by_site_order_chunk_invariant(chunk_rows):
    # All scores equal: every tie must break toward the earlier site,
    # whatever the batching.
    sites = _correlated_panel(22, 24, seed=11, copy_every=2)
    scores = np.full(22, 3.5)
    result = ld_clump(
        sites, scores, window=6, r2=0.2, chunk_rows=chunk_rows, workers=1
    )
    assignment, index_sites = _dense_clump(sites, scores, window=6, r2=0.2)
    assert result.assignment.tolist() == assignment.tolist()
    # With equal scores the rank order is site order.
    assert result.index_sites.tolist() == sorted(result.index_sites.tolist())
    # Every absorbed site points at an earlier index variant.
    absorbed = np.nonzero(result.assignment != np.arange(22))[0]
    assert all(result.assignment[m] < m for m in absorbed)


def test_clump_members_are_exhaustive():
    sites = _correlated_panel(20, 30, seed=5, copy_every=2)
    scores = np.random.default_rng(5).random(20)
    result = ld_clump(sites, scores, window=8, r2=0.15, chunk_rows=7, workers=1)
    seen = set()
    for clump in result.clumps:
        seen.add(clump.index_site)
        seen.update(clump.members)
    assert seen == set(range(20))


# ---------------------------------------------------------------------------
# counters and resident-state bound
# ---------------------------------------------------------------------------


def test_prune_counters_exact(tracer):
    sites = _correlated_panel(24, 24, seed=2)
    result = ld_prune(sites, window=6, r2=0.3, chunk_rows=5, workers=1)
    counters = tracer.counters.snapshot()
    assert counters["ldops.sites_seen"] == 24
    assert counters["ldops.sites_kept"] == result.kept.size
    assert counters["ldops.sites_pruned"] == result.pruned.size
    assert counters["ldops.pairs_tested"] == result.pairs_tested
    assert counters["ldops.window_peak_sites"] == result.peak_window_sites
    assert result.peak_window_sites <= 6


def test_clump_counters_exact(tracer):
    sites = _correlated_panel(24, 24, seed=2)
    scores = np.random.default_rng(2).random(24)
    result = ld_clump(sites, scores, window=6, r2=0.3, chunk_rows=5, workers=1)
    counters = tracer.counters.snapshot()
    n_clumps = len(result.clumps)
    assert counters["ldops.sites_seen"] == 24
    assert counters["ldops.clumps_formed"] == n_clumps
    assert counters["ldops.sites_absorbed"] == 24 - n_clumps
    assert counters["ldops.pairs_tested"] == result.pairs_tested
    assert counters["ldops.window_peak_sites"] == result.peak_window_sites


def test_finalize_counters_emitted_once(tracer):
    sites = _correlated_panel(10, 16, seed=4)
    pruner = LDPruner(window=4, r2=0.3, workers=1)
    pruner.add_chunk(sites)
    first = pruner.finalize()
    second = pruner.finalize()
    assert np.array_equal(first.kept, second.kept)
    assert tracer.counters.snapshot()["ldops.sites_seen"] == 10


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------


def test_prune_rejects_bad_params():
    with pytest.raises(DatasetError):
        LDPruner(window=0, r2=0.5)
    with pytest.raises(DatasetError):
        LDPruner(window=5, r2=-0.1)
    with pytest.raises(DatasetError):
        LDPruner(window=5, r2=1.5)
    with pytest.raises(DatasetError):
        ld_prune(np.zeros((4, 4), dtype=np.uint8), 5, 0.5, chunk_rows=0)


def test_prune_rejects_bad_chunks():
    pruner = LDPruner(window=4, r2=0.3, workers=1)
    with pytest.raises(DatasetError):
        pruner.add_chunk(np.ones(5, dtype=np.uint8))  # 1-D
    with pytest.raises(DatasetError):
        pruner.add_chunk(np.full((3, 6), 2, dtype=np.uint8))  # non-binary
    with pytest.raises(DatasetError):
        pruner.add_chunk(np.ones((3, 4), dtype=np.float64))  # float dtype
    with pytest.raises(DatasetError):
        pruner.add_chunk(np.ones((3, 0), dtype=np.uint8))  # zero columns


def test_prune_rejects_inconsistent_columns():
    pruner = LDPruner(window=4, r2=0.3, workers=1)
    pruner.add_chunk(np.ones((2, 6), dtype=np.uint8))
    with pytest.raises(DatasetError):
        pruner.add_chunk(np.ones((2, 5), dtype=np.uint8))


def test_add_chunk_after_finalize_raises():
    pruner = LDPruner(window=4, r2=0.3, workers=1)
    pruner.add_chunk(np.eye(4, dtype=np.uint8))
    pruner.finalize()
    with pytest.raises(DatasetError):
        pruner.add_chunk(np.eye(4, dtype=np.uint8))
    clumper = LDClumper(window=4, r2=0.3, scores=np.ones(4), workers=1)
    clumper.add_chunk(np.eye(4, dtype=np.uint8))
    clumper.finalize()
    with pytest.raises(DatasetError):
        clumper.add_chunk(np.eye(4, dtype=np.uint8))


def test_clump_rejects_bad_scores():
    with pytest.raises(DatasetError):
        LDClumper(window=4, r2=0.3, scores=np.ones((2, 2)))
    with pytest.raises(DatasetError):
        LDClumper(window=4, r2=0.3, scores=np.array([1.0, np.nan]))
    with pytest.raises(DatasetError):
        LDClumper(window=4, r2=0.3, scores=np.array([1.0, np.inf]))


def test_clump_score_length_mismatch():
    sites = _correlated_panel(8, 12, seed=9)
    # Too few scores: raises as soon as a chunk overruns them.
    with pytest.raises(DatasetError, match="supplied scores"):
        ld_clump(sites, np.ones(5), window=4, r2=0.3, chunk_rows=3, workers=1)
    # Too many scores: raises at the end of the stream.
    with pytest.raises(DatasetError, match="streamed 8 sites"):
        ld_clump(sites, np.ones(12), window=4, r2=0.3, chunk_rows=3, workers=1)


def test_empty_chunks_are_noops():
    sites = _correlated_panel(10, 16, seed=6)
    pruner = LDPruner(window=4, r2=0.3, workers=1)
    pruner.add_chunk(np.empty((0, 16), dtype=np.uint8))
    pruner.add_chunk(sites)
    pruner.add_chunk(np.empty((0, 16), dtype=np.uint8))
    result = pruner.finalize()
    reference = ld_prune(sites, 4, 0.3, chunk_rows=10, workers=1)
    assert np.array_equal(result.kept, reference.kept)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_ld_prune_and_clump(tmp_path, capsys):
    from repro.cli import main

    sites = _correlated_panel(30, 32, seed=8)
    panel = tmp_path / "sites.snpbin"
    write_snpbin(str(panel), sites)
    scores = tmp_path / "scores.npy"
    np.save(scores, np.random.default_rng(8).random(30))

    prune_out = tmp_path / "prune.npz"
    rc = main(
        [
            "ld-prune", "--input", str(panel), "--window", "6",
            "--r2", "0.3", "--chunk-rows", "7",
            "--output", str(prune_out),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "LD pruning" in out and "kept" in out
    saved = np.load(prune_out)
    reference = ld_prune(sites, 6, 0.3, chunk_rows=7, workers=1)
    assert np.array_equal(saved["kept"], reference.kept)
    assert np.array_equal(saved["pruned"], reference.pruned)
    assert np.array_equal(saved["blocker"], reference.blocker)

    clump_out = tmp_path / "clump.npz"
    rc = main(
        [
            "clump", "--input", str(panel), "--scores", str(scores),
            "--window", "6", "--r2", "0.3", "--chunk-rows", "7",
            "--output", str(clump_out),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "LD clumping" in out and "clumps formed" in out
    saved = np.load(clump_out)
    reference = ld_clump(
        sites, np.load(scores), 6, 0.3, chunk_rows=7, workers=1
    )
    assert np.array_equal(saved["assignment"], reference.assignment)
    assert np.array_equal(saved["index_sites"], reference.index_sites)


def test_cli_ld_prune_transpose(tmp_path):
    from repro.cli import main
    from repro.snp.io import save_dataset_npz
    from repro.snp.dataset import SNPDataset

    rng = np.random.default_rng(13)
    samples = rng.integers(0, 2, size=(16, 20), dtype=np.uint8)
    data = tmp_path / "panel.npz"
    save_dataset_npz(str(data), SNPDataset(matrix=samples))
    out = tmp_path / "prune.npz"
    rc = main(
        [
            "ld-prune", "--input", str(data), "--transpose",
            "--window", "5", "--r2", "0.4", "--output", str(out),
        ]
    )
    assert rc == 0
    reference = ld_prune(
        np.ascontiguousarray(samples.T), 5, 0.4, workers=1
    )
    assert np.array_equal(np.load(out)["kept"], reference.kept)


def test_cli_clump_rejects_bad_scores_file(tmp_path, capsys):
    from repro.cli import main

    sites = _correlated_panel(10, 16, seed=1)
    panel = tmp_path / "sites.snpbin"
    write_snpbin(str(panel), sites)
    bad = tmp_path / "scores.txt"
    bad.write_text("not a number\n")
    rc = main(
        ["clump", "--input", str(panel), "--scores", str(bad)]
    )
    assert rc != 0


# ---------------------------------------------------------------------------
# satellite regressions: LD / mixture stats layer
# ---------------------------------------------------------------------------


def _empty_report():
    return linkage_disequilibrium(
        np.ones((3, 2), dtype=np.uint8), workers=1
    ).report


def test_ldresult_zero_observations_raises_typed_error():
    report = _empty_report()
    with pytest.raises(DatasetError, match="n_observations"):
        LDResult(
            counts=np.zeros((2, 2)),
            frequencies=np.zeros(2),
            n_observations=0,
            report=report,
        )


def test_ldresult_negative_observations_raises():
    report = _empty_report()
    with pytest.raises(DatasetError):
        LDResult(
            counts=np.zeros((2, 2)),
            frequencies=np.zeros(2),
            n_observations=-1,
            report=report,
        )


def test_ldresult_empty_table_zero_observations_allowed():
    report = _empty_report()
    result = LDResult(
        counts=np.zeros((0, 0)),
        frequencies=np.zeros(0),
        n_observations=0,
        report=report,
    )
    assert result.p_ab.shape == (0, 0)
    assert result.r_squared.shape == (0, 0)


def test_linkage_disequilibrium_zero_columns_raises_not_nan():
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        # Sites but no samples: site-mode LD has zero observations.
        with pytest.raises(DatasetError):
            linkage_disequilibrium(
                np.empty((0, 4), dtype=np.uint8), workers=1
            )
        # Entities but no sites: sample-mode LD has zero observations.
        with pytest.raises(DatasetError):
            linkage_disequilibrium(
                np.empty((4, 0), dtype=np.uint8), workers=1,
                compare="samples",
            )


def test_mixture_index_out_of_range_raises_typed_error():
    rng = np.random.default_rng(0)
    refs = rng.integers(0, 2, size=(4, 16), dtype=np.uint8)
    mixes = rng.integers(0, 2, size=(2, 16), dtype=np.uint8)
    result = mixture_analysis(refs, mixes, workers=1)
    assert isinstance(result.report, RunReport)
    with pytest.raises(DatasetError, match="out of range"):
        result.consistent_contributors(2)
    with pytest.raises(DatasetError, match="out of range"):
        result.consistent_contributors(-1)
    with pytest.raises(DatasetError):
        result.consistent_contributors("0")
    # In-range indices still work, including numpy integers.
    assert result.consistent_contributors(np.int64(1)) == (
        result.consistent_contributors(1)
    )


def test_streaming_binary_check_single_pass_message():
    from repro.core.streaming import _check_binary_matrix

    with pytest.raises(DatasetError, match=r"min=3, max=3"):
        _check_binary_matrix("panel", np.full((2, 4), 3, dtype=np.uint8))
    # Empty chunks skip the value scan entirely.
    out = _check_binary_matrix("panel", np.empty((0, 4), dtype=np.uint8))
    assert out.shape == (0, 4)
