"""Forensic scenario: FastID mixture analysis.

A DNA mixture (bitwise OR of several contributors) is screened against
a reference database: references whose minor alleles are all present in
the mixture are consistent contributors (score 0).  The example also
demonstrates the paper's Section VI-E1 device-specific kernel choice:
NVIDIA devices run the fused AND-NOT kernel, the Vega 64 pre-negates
the mixture at pack time -- and both give identical results.

Run:  python examples/mixture_analysis.py
"""

import numpy as np

from repro.blis.microkernel import ComparisonOp
from repro.core.mixture import mixture_analysis
from repro.gpu.arch import ALL_GPUS, VEGA_64
from repro.gpu.cycles import peak_word_ops_per_second
from repro.snp import generate_database, make_mixture

N_REFERENCES = 5_000
N_SITES = 384
CONTRIBUTORS = (17, 211, 1042)


def main() -> None:
    db = generate_database(N_REFERENCES, N_SITES, rng=99)
    mixture = make_mixture(db.profiles[list(CONTRIBUTORS)])[None, :]
    print(
        f"mixture of profiles {CONTRIBUTORS} "
        f"({int(mixture.sum())} minor alleles present)"
    )

    print("\nscreening on each simulated device:")
    scores_by_device = {}
    for arch in ALL_GPUS:
        result = mixture_analysis(db.profiles, mixture, device=arch)
        scores_by_device[arch.name] = result.scores
        flagged = result.consistent_contributors(0)
        kernel = "AND (pre-negated DB)" if result.prenegated else "fused AND-NOT"
        print(
            f"  {arch.name:8s}  kernel = {kernel:22s} "
            f"flagged {len(flagged)} consistent references"
        )

    # Identical results regardless of kernel variant.
    tables = list(scores_by_device.values())
    assert all((tables[0] == t).all() for t in tables[1:])
    print("\nall devices agree bit-exactly")

    result = mixture_analysis(db.profiles, mixture, device="Titan V")
    flagged = {r for r, _ in result.consistent_contributors(0)}
    true_found = flagged & set(CONTRIBUTORS)
    false_positives = flagged - set(CONTRIBUTORS)
    print(f"true contributors found : {len(true_found)}/{len(CONTRIBUTORS)}")
    print(
        f"coincidental matches    : {len(false_positives)} "
        f"of {N_REFERENCES - 3} non-contributors "
        f"({100 * len(false_positives) / (N_REFERENCES - 3):.2f}%)"
    )
    nonzero = result.scores[result.scores > 0]
    print(f"non-contributor scores  : min {nonzero.min()}, "
          f"median {int(np.median(nonzero))}")

    # Why pre-negate on Vega: the ALU-pipe arithmetic (Section VI-E1).
    fused = peak_word_ops_per_second(VEGA_64, ComparisonOp.ANDNOT)
    pre = peak_word_ops_per_second(VEGA_64, ComparisonOp.AND_PRENEGATED)
    print(
        f"\nVega 64 peak with in-kernel NOT : {fused / 1e9:7.1f} GPOPS\n"
        f"Vega 64 peak with pre-negated DB: {pre / 1e9:7.1f} GPOPS "
        f"(+{(pre / fused - 1) * 100:.0f}%)"
    )


if __name__ == "__main__":
    main()
