"""Population-genetics scenario: haplotype-block discovery via LD.

The motivating LD use case of the paper's introduction: scan a
population for regions of correlated variation.  We generate a
population with known block boundaries, compute all-pairs r^2 on each
simulated GPU, verify the devices agree bit-exactly (the portability
claim), and recover the planted block boundaries from the LD matrix.

Run:  python examples/ld_population_scan.py
"""

import numpy as np

from repro import SNPComparisonFramework, Algorithm, linkage_disequilibrium
from repro.gpu.arch import ALL_GPUS
from repro.snp import PopulationModel, generate_population

BLOCK_SIZE = 25
N_SITES = 300


def detect_block_boundaries(r2: np.ndarray, threshold: float = 0.08) -> list[int]:
    """Boundaries where adjacent-site LD collapses."""
    adjacent = np.array([r2[i, i + 1] for i in range(r2.shape[0] - 1)])
    return [i + 1 for i in range(len(adjacent)) if adjacent[i] < threshold]


def main() -> None:
    model = PopulationModel(
        n_samples=500,
        n_sites=N_SITES,
        block_size=BLOCK_SIZE,
        founders_per_block=2,
        maf_alpha=4.0,
        maf_beta=4.0,
        recombination_noise=0.01,
    )
    dataset = generate_population(model, rng=2024)
    true_boundaries = set(range(BLOCK_SIZE, N_SITES, BLOCK_SIZE))
    print(f"population: {dataset}")
    print(f"planted block boundaries: {sorted(true_boundaries)}")

    # Portability check: run the identical computation on all three
    # simulated devices and compare results bit-exactly.
    results = {}
    for arch in ALL_GPUS:
        fw = SNPComparisonFramework(arch, Algorithm.LD)
        results[arch.name] = linkage_disequilibrium(
            dataset, compare="sites", framework=fw
        )
    tables = [r.counts for r in results.values()]
    assert all((tables[0] == t).all() for t in tables[1:]), "devices disagree!"
    print("\nall three devices produced bit-identical LD tables")

    # Block discovery from the LD structure.
    r2 = results["Titan V"].r_squared
    found = detect_block_boundaries(r2)
    hits = true_boundaries & set(found)
    print(f"\nboundaries recovered from r^2: {len(hits)}/{len(true_boundaries)}")
    within = np.mean(
        [
            r2[i, j]
            for b in range(0, N_SITES, BLOCK_SIZE)
            for i in range(b, b + BLOCK_SIZE)
            for j in range(i + 1, b + BLOCK_SIZE)
        ]
    )
    across = np.mean([r2[i, i + BLOCK_SIZE] for i in range(N_SITES - BLOCK_SIZE)])
    print(f"mean r^2 within blocks : {within:.3f}")
    print(f"mean r^2 across blocks : {across:.3f}")

    # Device comparison on this problem.
    print("\nper-device simulated timing:")
    for name, result in results.items():
        rep = result.report
        print(
            f"  {name:8s}  kernel {rep.kernel_s * 1e3:8.3f} ms   "
            f"end-to-end {rep.end_to_end_s * 1e3:8.1f} ms   "
            f"(kernel efficiency {rep.kernel_efficiency * 100:.1f}%)"
        )


if __name__ == "__main__":
    main()
