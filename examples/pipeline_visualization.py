"""Visualizing the double-buffered pipeline (Section VI-A1).

Runs the same tiled FastID problem with and without double buffering on
a memory-constrained device, renders both schedules as ASCII Gantt
charts, and exports a Chrome-trace JSON (load it at chrome://tracing or
ui.perfetto.dev) for the overlapped run.

Run:  python examples/pipeline_visualization.py
"""

import dataclasses
import tempfile
from pathlib import Path

import numpy as np

from repro.blis.microkernel import ComparisonOp
from repro.bench.gantt import overlap_fraction, render_gantt
from repro.core.packing import pack_operand
from repro.core.pipeline import run_pipeline
from repro.gpu.arch import GTX_980
from repro.gpu.device import Device
from repro.gpu.kernel import SnpKernel
from repro.gpu.tracing import write_chrome_trace


def build_queue(double_buffering: bool):
    """A GTX-980-like device shrunk so the problem needs many tiles."""
    arch = dataclasses.replace(GTX_980, max_alloc_bytes=96 * 1024)
    rng = np.random.default_rng(0)
    queries = pack_operand(
        (rng.random((32, 1024)) < 0.4).astype(np.uint8), row_multiple=4
    )
    database = pack_operand(
        (rng.random((4608, 1024)) < 0.4).astype(np.uint8), row_multiple=4
    )
    kernel = SnpKernel.compile(
        arch, ComparisonOp.XOR, m_c=32, m_r=4, k_c=383, n_r=768,
        grid_rows=1, grid_cols=16,
    )
    queue = Device(arch).create_context().create_queue()
    _, _, plan = run_pipeline(
        queue, kernel, queries, database, double_buffering=double_buffering
    )
    return queue, plan


def main() -> None:
    for label, enabled in (("WITHOUT double buffering", False),
                           ("WITH double buffering", True)):
        queue, plan = build_queue(enabled)
        print(f"--- {label} ({plan.n_tiles} tiles) ---")
        print(render_gantt(queue, width=68))
        print(f"end-to-end: {queue.finish() * 1e3:.3f} ms "
              f"(overlap hides {overlap_fraction(queue) * 100:.0f}% of engine "
              f"busy-time)\n")

    queue, _ = build_queue(True)
    out = Path(tempfile.gettempdir()) / "repro_pipeline_trace.json"
    n_events = write_chrome_trace(queue, out)
    print(f"wrote {n_events} trace events to {out}")
    print("open chrome://tracing (or ui.perfetto.dev) and load the file "
          "to inspect the schedule interactively")


if __name__ == "__main__":
    main()
