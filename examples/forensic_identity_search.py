"""Forensic scenario: FastID identity search against a reference database.

A scaled-down version of the paper's Fig. 8 workload: suspect profiles
(some degraded) are searched against a reference database with the XOR
kernel.  The example then uses the analytical model to project the
measured pipeline to full NDIS scale (>20 million profiles), including
the Section VI-E2 memory behaviour (tiling on the GTX 980).

Run:  python examples/forensic_identity_search.py
"""

from repro import Algorithm
from repro.core.identity import identity_search
from repro.gpu.arch import ALL_GPUS
from repro.model.endtoend import estimate_end_to_end
from repro.snp import generate_database, generate_queries

DB_PROFILES = 50_000      # scaled-down reference database
N_SITES = 512             # forensic SNP panel size
NDIS_SCALE = 20 * 1024 * 1024


def main() -> None:
    # Reference database and a casework query set: 4 true members with
    # 1 % genotyping error (degraded samples), 4 unrelated individuals.
    db = generate_database(DB_PROFILES, N_SITES, rng=7)
    queries, member_rows = generate_queries(
        db, n_member_queries=4, n_unrelated_queries=4, rng=8, error_rate=0.01
    )
    print(f"database: {db.n_profiles:,} profiles x {db.n_sites} SNPs")
    print(f"queries : {queries.shape[0]} (4 degraded members + 4 unrelated)")

    result = identity_search(queries, db, device="Titan V")
    print("\nsearch results (distance = differing SNP sites):")
    for qi in range(queries.shape[0]):
        profile, distance = result.best_match(qi)
        truth = int(member_rows[qi])
        if truth >= 0:
            status = "HIT" if profile == truth else "MISS"
            print(
                f"  query {qi}: best profile #{profile} at distance "
                f"{distance:4d}  (true member #{truth}: {status})"
            )
        else:
            print(
                f"  query {qi}: best profile #{profile} at distance "
                f"{distance:4d}  (unrelated; expect large distance)"
            )

    rep = result.report
    print(f"\nmeasured pipeline ({rep.device}): {rep.end_to_end_s * 1e3:.1f} ms "
          f"end-to-end, {rep.n_tiles} tile(s)")

    # Project to NDIS scale with the analytical model (identical
    # scheduling code, timing-only execution).
    print(f"\nprojection to NDIS scale ({NDIS_SCALE:,} profiles, "
          f"{N_SITES} SNPs, 32 queries):")
    for arch in ALL_GPUS:
        est = estimate_end_to_end(
            arch, Algorithm.FASTID_IDENTITY, 32, NDIS_SCALE, N_SITES
        )
        print(
            f"  {arch.name:8s}  {est.end_to_end_s:6.3f} s end-to-end  "
            f"({est.n_tiles} tile(s); kernel {est.kernel_s * 1e3:6.1f} ms, "
            f"transfers {(est.h2d_s + est.d2h_s) * 1e3:7.1f} ms, "
            f"overlap hid {est.overlap_s * 1e3:6.1f} ms)"
        )
    print(
        "\nnote: the GTX 980 must tile the database (max allocation "
        "0.983 GiB, Section VI-E2); the Titan V holds it whole."
    )


if __name__ == "__main__":
    main()
