"""Device tuning report: from hardware features to a configuration header.

Walks the paper's Section V workflow for every device: describe the
hardware (Table I), recover the measurement-derived parameters with the
microbenchmark procedures, derive the software configuration (Eqs. 4-7,
Table II), and emit the C configuration header the OpenCL build would
consume.

Run:  python examples/device_tuning_report.py [device]
"""

import sys

from repro import Algorithm, derive_config, render_header
from repro.gpu.arch import ALL_GPUS, get_gpu
from repro.gpu.cycles import bottleneck_pipe, peak_word_ops_per_second
from repro.gpu.microbench import run_microbench_suite
from repro.util.tables import render_kv


def report_device(arch) -> None:
    print("=" * 70)
    print(f"{arch.name} ({arch.vendor} {arch.microarchitecture})")
    print("=" * 70)

    print("\n-- hardware features (Table I) --")
    print(render_kv(arch.describe().items()))

    print("\n-- microbenchmark recovery (Sections V-C/D) --")
    mb = run_microbench_suite(arch)
    print(render_kv([
        ("POPC chain latency (measured cycles)", f"{mb.popc_latency:.1f}"),
        ("POPC units/cluster (measured)", f"{mb.popc_throughput:.1f}"),
        ("ALU units/cluster (measured)", f"{mb.alu_throughput:.1f}"),
        ("POPC shares ALU pipe", mb.popc_alu_shared),
        ("ADD shares AND pipe", mb.add_and_shared),
    ]))

    print("\n-- theoretical peaks (bottleneck analysis, Section V-D) --")
    for op, label in (("and", "LD / prenegated mixture"),
                      ("xor", "identity search"),
                      ("andnot", "mixture with in-kernel NOT")):
        peak = peak_word_ops_per_second(arch, op)
        pipe = bottleneck_pipe(arch, op)
        print(f"  {label:28s}: {peak / 1e9:7.1f} GPOPS  (bound by {pipe.value})")

    for algorithm in (Algorithm.LD, Algorithm.FASTID_IDENTITY,
                      Algorithm.FASTID_MIXTURE):
        config = derive_config(arch, algorithm)
        print(f"\n-- derived configuration: {algorithm.value} --")
        print(render_kv(config.as_table_row().items()))
        print(f"micro-kernel: {config.op.value}")

    print("\n-- generated configuration header (LD) --")
    print(render_header(derive_config(arch, Algorithm.LD)))


def main() -> None:
    if len(sys.argv) > 1:
        devices = [get_gpu(" ".join(sys.argv[1:]))]
    else:
        devices = list(ALL_GPUS)
    for arch in devices:
        report_device(arch)
        print()


if __name__ == "__main__":
    main()
