"""The paper's Section VII future-work items, implemented and demonstrated.

1. **Sparse SNP representations** -- "a typical DNA sample is expected
   to contain mostly major alleles": the cost model picks index-set
   kernels for rare-variant panels and dense bitvectors otherwise,
   bit-exactly.
2. **Multi-GPU nodes** (DGX-2 direction) -- database partitioning over
   a 16-device fabric, with the communication cost the paper
   anticipates visible on shared-PCIe nodes.
3. **Kinship screening and match statistics** -- the forensic analysis
   layers (KinLinks-style IBS screening [4], random-match probability)
   on top of the comparison tables.

Run:  python examples/future_work_extensions.py
"""

import numpy as np

from repro.core.config import Algorithm
from repro.multigpu import DGX2_LIKE, QUAD_GTX980, estimate_multi_gpu, run_multi_gpu
from repro.snp import generate_database
from repro.snp.kinship import ibs_matrix
from repro.snp.significance import (
    panel_sites_for_target_rmp,
    random_match_probability,
)
from repro.sparse import density_crossover
from repro.sparse.auto import auto_comparison


def demo_sparse() -> None:
    print("=" * 64)
    print("1. sparse representation (auto-selected by the cost model)")
    print("=" * 64)
    d_star = density_crossover()
    print(f"modeled density crossover: sparse wins below {d_star * 100:.1f}% MAF\n")
    rng = np.random.default_rng(0)
    for label, density in (("rare-variant panel", 0.006), ("common-variant panel", 0.35)):
        bits = (rng.random((48, 8000)) < density).astype(np.uint8)
        table, choice = auto_comparison(bits, op="and")
        print(
            f"{label:22s} density={choice.density:.3f} -> "
            f"{choice.representation:6s} "
            f"(predicted {choice.predicted_speedup:.1f}x over the alternative); "
            f"table {table.shape}"
        )
    print()


def demo_multigpu() -> None:
    print("=" * 64)
    print("2. multi-GPU scaling (DGX-2-like vs shared-PCIe workstation)")
    print("=" * 64)
    # Functional correctness at small scale.
    rng = np.random.default_rng(1)
    queries = (rng.random((8, 256)) < 0.4).astype(np.uint8)
    db = (rng.random((6000, 256)) < 0.4).astype(np.uint8)
    table, report = run_multi_gpu(QUAD_GTX980, Algorithm.FASTID_IDENTITY, queries, db)
    print(
        f"functional 4-GPU run: {report.n_devices_used} devices, "
        f"makespan {report.makespan_s * 1e3:.1f} ms, table {table.shape}\n"
    )
    # NDIS-scale projection on both node types.
    for system in (DGX2_LIKE, QUAD_GTX980):
        single = estimate_multi_gpu(
            system.subsystem(1), Algorithm.FASTID_IDENTITY, 32, 20 * 1024 * 1024, 1024
        )
        full = estimate_multi_gpu(
            system, Algorithm.FASTID_IDENTITY, 32, 20 * 1024 * 1024, 1024
        )
        print(
            f"{system.name:28s}: 1 device {single.makespan_s:.3f} s -> "
            f"{system.n_devices} devices {full.makespan_s:.3f} s "
            f"({full.speedup_over(single.makespan_s):.2f}x; link: "
            f"{system.interconnect.name})"
        )
    print()


def demo_forensic_statistics() -> None:
    print("=" * 64)
    print("3. kinship screening and match statistics")
    print("=" * 64)
    db = generate_database(60, 512, rng=2)
    profiles = db.profiles.copy()
    profiles[30] = profiles[5]  # plant a duplicate identity
    result = ibs_matrix(profiles, device="GTX 980")
    pairs = result.related_pairs(min_excess=0.1)
    print(f"kinship screen over {profiles.shape[0]} profiles: "
          f"{len(pairs)} flagged pair(s)")
    for i, j, ibs in pairs[:3]:
        print(f"  profiles {i} and {j}: IBS {ibs:.3f} "
              f"(random expectation {result.expected_random_ibs:.3f})")

    rmp = random_match_probability(db.frequencies, max_distance=0)
    print(f"\nrandom-match probability of this 512-SNP panel: {rmp:.2e}")
    for target in (1e-9, 1e-15):
        n = panel_sites_for_target_rmp(mean_maf=0.3, target_rmp=target)
        print(f"sites needed for RMP <= {target:.0e} at MAF 0.3: {n}")


def main() -> None:
    demo_sparse()
    demo_multigpu()
    demo_forensic_statistics()


if __name__ == "__main__":
    main()
