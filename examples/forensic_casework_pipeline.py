"""Complete forensic casework pipeline on the simulated framework.

A realistic end-to-end scenario combining the library's layers:

1. build an NDIS-style reference database on a forensic panel,
2. **streaming top-k search** of degraded suspect samples (memory
   stays O(queries x k) no matter the database size),
3. statistical qualification of the hits (random-match probability),
4. mixture screening of a crime-scene sample,
5. kinship fallback: no direct hit, but a relative in the database.

Run:  python examples/forensic_casework_pipeline.py
"""

import numpy as np

from repro.core.mixture import mixture_analysis
from repro.core.streaming import StreamingIdentitySearch
from repro.snp.forensic import make_mixture
from repro.snp.kinship import ibs_matrix
from repro.snp.panels import FORENSIC_EXTENDED, PanelSpec
from repro.snp.pedigree import Pedigree, expected_ibs
from repro.snp.significance import random_match_probability

DB_SIZE = 30_000
BATCH = 4_096


def main() -> None:
    panel = PanelSpec(
        name=FORENSIC_EXTENDED.name,
        description=FORENSIC_EXTENDED.description,
        n_sites=512,  # scaled from 1024 to keep the demo quick
        maf_alpha=FORENSIC_EXTENDED.maf_alpha,
        maf_beta=FORENSIC_EXTENDED.maf_beta,
    )
    db = panel.database(DB_SIZE, rng=0)
    rng = np.random.default_rng(1)
    print(f"reference database: {db.n_profiles:,} profiles x {db.n_sites} SNPs\n")

    # -- 1+2: streaming search of two casework samples ------------------------
    suspect = db.profiles[12_345].copy()
    suspect[rng.choice(512, size=6, replace=False)] ^= 1  # 6 genotyping errors
    unknown = (rng.random(512) < db.frequencies).astype(np.uint8)  # not in DB
    queries = np.vstack([suspect, unknown])

    stream = StreamingIdentitySearch(queries, k=3, device="Titan V")
    for start in range(0, db.n_profiles, BATCH):
        stream.add_batch(db.profiles[start : start + BATCH])
    print(f"streamed {stream.batches_seen} batches "
          f"({stream.rows_seen:,} profiles, simulated "
          f"{stream.simulated_seconds:.2f} s device time)")

    for qi, label in enumerate(("degraded suspect sample", "unknown individual")):
        top = stream.matches(qi)
        print(f"\n{label}: top-{len(top)} candidates")
        for match in top:
            print(f"  profile #{match.database_index:>6} at distance {match.distance}")

    # -- 3: statistical qualification ------------------------------------------
    best = stream.best(0)
    rmp = random_match_probability(db.frequencies, max_distance=best.distance)
    print(
        f"\nhit qualification: P(random profile within distance "
        f"{best.distance}) = {rmp:.2e}; expected false hits in "
        f"{DB_SIZE:,} profiles = {rmp * DB_SIZE:.2e}"
    )
    miss = stream.best(1)
    print(f"(unknown sample's best distance {miss.distance} is consistent "
          f"with chance -- no identification)")

    # -- 4: mixture screening ---------------------------------------------------
    contributors = (99, 4_242, 17_171)
    scene_mixture = make_mixture(db.profiles[list(contributors)])[None, :]
    result = mixture_analysis(db.profiles, scene_mixture, device="Vega 64")
    flagged = result.consistent_contributors(0)
    print(f"\nmixture screen ({'pre-negated DB' if result.prenegated else 'fused'} "
          f"kernel): {len(flagged)} consistent profiles")
    recovered = {r for r, _ in flagged} & set(contributors)
    print(f"true contributors recovered: {sorted(recovered)}")

    # -- 5: kinship fallback ----------------------------------------------------
    # Kinship needs a much larger panel than identity: the parent-child
    # vs unrelated IBS gap is ~0.06, so at 512 sites (sigma ~ 0.022)
    # thousands of unrelated pairs would cross any threshold.  Re-type
    # the cohort on a 4096-SNP kinship panel (sigma ~ 0.008).
    kin_panel = PanelSpec(
        name="kinship-panel", description="wide panel for relatedness",
        n_sites=4096, maf_alpha=panel.maf_alpha, maf_beta=panel.maf_beta,
    )
    kin_db = kin_panel.database(200, rng=3)
    ped = Pedigree(frequencies=kin_db.frequencies, rng=2)
    parent = ped.add_founder()
    other = ped.add_founder()
    child = ped.add_child(parent, other)
    family = ped.matrix()
    cohort = np.vstack([kin_db.profiles, family[parent][None, :],
                        family[child][None, :]])
    kin = ibs_matrix(cohort, device="GTX 980")
    threshold = (
        expected_ibs(kin_db.frequencies, "parent-child")
        + expected_ibs(kin_db.frequencies, "unrelated")
    ) / 2
    pairs = [
        (i, j, v) for i, j, v in kin.related_pairs(min_excess=0.0)
        if v >= threshold
    ]
    print(f"\nkinship fallback (4096-SNP panel): {len(pairs)} pair(s) above "
          f"the parent-child midpoint (IBS >= {threshold:.3f})")
    for i, j, v in pairs:
        note = " <- planted parent-child" if {i, j} == {200, 201} else ""
        print(f"  cohort members {i} and {j}: IBS {v:.3f}{note}")


if __name__ == "__main__":
    main()
