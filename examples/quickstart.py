"""Quickstart: compute linkage disequilibrium on a simulated GPU.

Generates a small synthetic population, runs the portable framework on
the (simulated) Titan V, and prints the LD statistics plus the itemized
performance report the paper's methodology produces.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import linkage_disequilibrium
from repro.snp import PopulationModel, generate_population


def main() -> None:
    # 1. A synthetic population: 200 individuals, 400 SNP sites, with
    #    haplotype-block structure so there is real LD to find.
    model = PopulationModel(
        n_samples=200,
        n_sites=400,
        block_size=20,
        founders_per_block=3,
        maf_alpha=2.0,
        maf_beta=3.0,
    )
    dataset = generate_population(model, rng=42)
    print(f"dataset: {dataset}")

    # 2. All-pairs LD between sites, computed by the GPU framework
    #    (bit-packed AND + POPC kernel, configured automatically from
    #    the device's hardware features).
    result = linkage_disequilibrium(dataset, device="Titan V", compare="sites")

    # 3. Statistics.
    r2 = result.r_squared
    off_diag = r2[~np.eye(r2.shape[0], dtype=bool)]
    print(f"\nLD statistics over {r2.shape[0]} sites:")
    print(f"  mean r^2          : {off_diag.mean():.4f}")
    print(f"  max  r^2          : {off_diag.max():.4f}")
    print(f"  pairs with r^2>0.5: {(off_diag > 0.5).sum() // 2}")
    print(f"  mean |D'|         : {np.abs(result.d_prime).mean():.4f}")

    # 4. The simulated-device performance report (paper Section VI
    #    methodology: kernel time from event profiling, end-to-end
    #    including transfers and OpenCL initialization).
    print("\nperformance report (simulated Titan V):")
    print(result.report)


if __name__ == "__main__":
    main()
